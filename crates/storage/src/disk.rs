//! The [`Disk`] façade that index implementations talk to.
//!
//! `Disk` combines a [`StorageBackend`], the [`DeviceModel`] cost accounting,
//! the per-index [`IoStats`], the optional LRU buffer pool and the
//! last-block-reuse micro-optimisation described in §6.5 of the paper ("we
//! check whether the last block fetched can be reused").
//!
//! All methods take `&self`, and the layer is built so N concurrent reader
//! threads over a frozen (bulk-loaded) index never serialise on a single
//! lock:
//!
//! * statistics are atomic counters ([`IoStats`]);
//! * the buffer pool is lock-striped ([`ShardedBufferPool`]);
//! * backends synchronise internally (reads share a reader/writer lock);
//! * the single-slot last-read reuse cache is guarded by a mutex that the
//!   read path only ever `try_lock`s — under contention the micro-opt is
//!   skipped rather than waited for;
//! * the sequential-access detector for the device cost model is one atomic
//!   word.
//!
//! Mutating operations (`allocate`, `free`, `create_file`) take the pager
//! mutex, but those only run during bulk load and inserts, which the
//! `lidx-core` read/write trait split keeps exclusive (`&mut self`) anyway.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::backend::{MemoryBackend, StorageBackend};
use crate::buffer::{
    AccessClass, BlockRef, PoolConfig, PoolPartitions, ReplacementPolicy, ShardedBufferPool,
};
use crate::device::DeviceModel;
use crate::error::{StorageError, StorageResult};
use crate::pager::Pager;
use crate::stats::{BlockKind, IoStats, OpStats};
use crate::{BlockId, DEFAULT_BLOCK_SIZE};
use lidx_telemetry::OpClass;

/// Identifier of a file managed by a [`Disk`].
pub type FileId = u32;

/// Construction-time configuration of a [`Disk`].
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Block size in bytes (the paper defaults to 4 KB).
    pub block_size: usize,
    /// Device cost model used to accumulate simulated latency.
    pub device: DeviceModel,
    /// Buffer pool capacity in blocks; 0 disables the pool (the paper's
    /// default setting).
    pub buffer_blocks: usize,
    /// Buffer pool replacement policy (strict LRU by default, matching the
    /// paper's Fig. 13 study; see [`ReplacementPolicy`] for the
    /// scan-resistant alternatives).
    pub buffer_policy: ReplacementPolicy,
    /// How buffer frames are divided between block kinds (unified by
    /// default; [`PoolPartitions::InnerReserved`] shields inner/meta frames
    /// from data scans).
    pub buffer_partitions: PoolPartitions,
    /// Whether a read of the block fetched by the immediately preceding read
    /// is served without charging an I/O (§6.5).
    pub reuse_last_block: bool,
    /// Whether freed extents may be reused by later allocations (the paper's
    /// measurements assume they are not; see §6.3).
    pub reuse_freed_space: bool,
    /// When true, every charged device cost is also *realised* as a
    /// `thread::sleep` of the same duration (outside all locks). This turns
    /// the cost model into actual blocking I/O time, which is what lets the
    /// concurrent-read benchmarks demonstrate latency hiding: N reader
    /// threads overlap their simulated waits exactly as they would overlap
    /// real disk requests. Off by default — the deterministic experiments
    /// only *count* time.
    pub simulate_latency: bool,
    /// Block kinds treated as memory-resident: their reads and writes are
    /// performed but not charged to the device. Used for the paper's §6.2
    /// configuration where all inner nodes (and the meta block) are cached in
    /// main memory while leaves stay on disk.
    pub memory_resident: [bool; 4],
    /// Outstanding-read queue depth of the [`Disk::read_queue`] engine: how
    /// many read requests a completion wave may carry (and how far scan
    /// readahead prefetches). A wave charges the *max* of its members' device
    /// costs instead of their sum, modelling depth-parallel service. Depth 1
    /// (the default) degenerates to the fully synchronous path — one request
    /// per wave, `max == sum` — so every existing number is reproduced
    /// bit for bit.
    pub queue_depth: usize,
    /// When true, every write also stores a [`crate::format::BlockStamp`]
    /// (CRC32 + write generation) in the backend's sidecar table and every
    /// device read verifies it, surfacing
    /// [`StorageError::ChecksumMismatch`] on torn or bit-flipped blocks.
    /// Off by default for in-memory evaluation disks (verification is pure
    /// overhead there and the depth-1 counters must stay bit-identical);
    /// the durable constructors ([`Disk::create_durable`] / [`Disk::open`])
    /// turn it on.
    pub verify_checksums: bool,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            device: DeviceModel::none(),
            buffer_blocks: 0,
            buffer_policy: ReplacementPolicy::default(),
            buffer_partitions: PoolPartitions::default(),
            reuse_last_block: true,
            reuse_freed_space: false,
            simulate_latency: false,
            memory_resident: [false; 4],
            queue_depth: 1,
            verify_checksums: false,
        }
    }
}

impl DiskConfig {
    /// Configuration with a specific block size and otherwise default values.
    pub fn with_block_size(block_size: usize) -> Self {
        DiskConfig { block_size, ..Default::default() }
    }

    /// Sets the device model.
    #[must_use]
    pub fn device(mut self, device: DeviceModel) -> Self {
        self.device = device;
        self
    }

    /// Sets the buffer pool capacity (in blocks).
    #[must_use]
    pub fn buffer_blocks(mut self, blocks: usize) -> Self {
        self.buffer_blocks = blocks;
        self
    }

    /// Sets the buffer pool replacement policy.
    #[must_use]
    pub fn buffer_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.buffer_policy = policy;
        self
    }

    /// Sets the buffer pool partitioning scheme.
    #[must_use]
    pub fn buffer_partitions(mut self, partitions: PoolPartitions) -> Self {
        self.buffer_partitions = partitions;
        self
    }

    /// Sets capacity, policy and partitions from one [`PoolConfig`].
    #[must_use]
    pub fn buffer_pool(mut self, pool: PoolConfig) -> Self {
        self.buffer_blocks = pool.capacity;
        self.buffer_policy = pool.policy;
        self.buffer_partitions = pool.partitions;
        self
    }

    /// The [`PoolConfig`] this configuration resolves to.
    pub fn pool_config(&self) -> PoolConfig {
        PoolConfig {
            capacity: self.buffer_blocks,
            policy: self.buffer_policy,
            partitions: self.buffer_partitions,
        }
    }

    /// Enables or disables last-block reuse.
    #[must_use]
    pub fn reuse_last_block(mut self, reuse: bool) -> Self {
        self.reuse_last_block = reuse;
        self
    }

    /// Enables or disables reuse of freed extents.
    #[must_use]
    pub fn reuse_freed_space(mut self, reuse: bool) -> Self {
        self.reuse_freed_space = reuse;
        self
    }

    /// Enables or disables realising device costs as actual blocking time
    /// (see [`DiskConfig::simulate_latency`]).
    #[must_use]
    pub fn simulate_latency(mut self, simulate: bool) -> Self {
        self.simulate_latency = simulate;
        self
    }

    /// Sets the outstanding-read queue depth (clamped to at least 1; see
    /// [`DiskConfig::queue_depth`]).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Enables (or disables) per-block checksum stamping and verified reads
    /// (see [`DiskConfig::verify_checksums`]).
    #[must_use]
    pub fn verify_checksums(mut self, verify: bool) -> Self {
        self.verify_checksums = verify;
        self
    }

    /// Marks `kinds` as memory-resident: their I/O still happens against the
    /// backend but is never charged to the device or the statistics. This is
    /// how the harness reproduces the "inner nodes are memory-resident"
    /// configuration of §6.2 (Figs. 8-9) uniformly for every index.
    #[must_use]
    pub fn memory_resident(mut self, kinds: &[BlockKind]) -> Self {
        for &k in kinds {
            self.memory_resident[Self::kind_slot(k)] = true;
        }
        self
    }

    fn kind_slot(kind: BlockKind) -> usize {
        match kind {
            BlockKind::Meta => 0,
            BlockKind::Inner => 1,
            BlockKind::Leaf => 2,
            BlockKind::Utility => 3,
        }
    }
}

/// The single-slot §6.5 reuse cache: the last block read and its pinned
/// frame. Refreshing the slot is one `Arc` clone, and a reuse hit hands the
/// frame back without copying a byte.
struct ReuseState {
    last_read: Option<(FileId, BlockId)>,
    frame: BlockRef,
}

/// Sentinel for [`Disk::last_device_access`] meaning "no access yet".
const NO_ACCESS: u64 = u64::MAX;

fn pack_access(file: FileId, block: BlockId) -> u64 {
    (u64::from(file) << 32) | u64::from(block)
}

/// How a device read should be classified for the sequential/random cost
/// split of the [`DeviceModel`].
///
/// `Auto` reproduces the historical behaviour: compare against the single
/// last-device-access word, which works single-threaded but lets interleaved
/// concurrent readers destroy each other's sequentiality (charging random
/// cost to a perfectly sequential scan). Streams that *know* their access
/// pattern — leaf-chain scans over contiguous extents, readahead prefetches —
/// pass `Sequential`/`Random` explicitly so the charge is immune to
/// cross-thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeqHint {
    /// Detect from the globally last-accessed block (historical behaviour).
    #[default]
    Auto,
    /// The caller knows this read continues a sequential stream.
    Sequential,
    /// The caller knows this read breaks any sequential stream.
    Random,
}

/// One request of a completion wave processed by [`Disk::run_wave`].
pub(crate) struct WaveReq {
    pub(crate) file: FileId,
    pub(crate) block: BlockId,
    pub(crate) kind: BlockKind,
    pub(crate) class: AccessClass,
    pub(crate) hint: SeqHint,
    /// `true`: the caller wants the pinned frame back (a queued read).
    /// `false`: a readahead prefetch — the frame is parked in the readahead
    /// cache and the request is skipped entirely if the block is already
    /// cached anywhere.
    pub(crate) deliver: bool,
}

/// Frames parked by readahead prefetch waves, keyed by `(file, block)`.
/// Consumed (removed) by the first read of the block; invalidated on frees
/// and overwrites like the buffer pool.
struct ReadaheadCache {
    frames: HashMap<(FileId, BlockId), (u64, BlockRef)>,
    /// Park order for FIFO eviction, each entry tagged with the generation
    /// it parked. May hold stale entries for frames already consumed,
    /// invalidated or re-parked; the generation check skips those lazily, so
    /// an old entry can never evict a newer frame for the same block.
    order: VecDeque<((FileId, BlockId), u64)>,
    /// Monotonic park counter backing the generation tags.
    generation: u64,
}

/// Safety valve: a workload of many abandoned short scans could otherwise
/// grow the readahead cache without bound. Dropping parked frames is always
/// correct (they are re-fetched on demand), so past this size the oldest
/// parked frames are evicted first — a batch's freshly parked waves survive
/// while stale leftovers of abandoned prefetches go.
const MAX_READAHEAD_FRAMES: usize = 1024;

impl ReadaheadCache {
    fn new() -> Self {
        ReadaheadCache { frames: HashMap::new(), order: VecDeque::new(), generation: 0 }
    }

    fn contains(&self, key: &(FileId, BlockId)) -> bool {
        self.frames.contains_key(key)
    }

    /// Consumes the parked frame for `key`, if any.
    fn take(&mut self, key: &(FileId, BlockId)) -> Option<BlockRef> {
        self.frames.remove(key).map(|(_, frame)| frame)
    }

    /// Drops an order entry only if it still names the generation that
    /// parked the live frame — a stale entry never evicts a newer frame.
    fn evict(&mut self, key: (FileId, BlockId), generation: u64) {
        if self.frames.get(&key).is_some_and(|&(g, _)| g == generation) {
            self.frames.remove(&key);
        }
    }

    /// Parks `frame`, evicting oldest-parked frames past
    /// [`MAX_READAHEAD_FRAMES`] — oldest first, so the waves a batch is
    /// still consuming survive while stale leftovers of abandoned
    /// prefetches go.
    fn park(&mut self, key: (FileId, BlockId), frame: BlockRef) {
        self.generation += 1;
        self.frames.insert(key, (self.generation, frame));
        self.order.push_back((key, self.generation));
        // Every live frame has exactly one order entry carrying its
        // generation, so the first loop terminates; the second keeps
        // consumed/re-parked leftovers from accumulating in the queue.
        while self.frames.len() > MAX_READAHEAD_FRAMES {
            let Some((old, generation)) = self.order.pop_front() else { break };
            self.evict(old, generation);
        }
        while self.order.len() > 2 * MAX_READAHEAD_FRAMES {
            let Some((old, generation)) = self.order.pop_front() else { break };
            self.evict(old, generation);
        }
    }

    fn clear(&mut self) {
        self.frames.clear();
        self.order.clear();
    }
}

/// A simulated (or real) disk shared by the blocks of one index instance.
pub struct Disk {
    backend: Box<dyn StorageBackend>,
    pool: ShardedBufferPool,
    pager: Mutex<Pager>,
    /// The §6.5 reuse slot. The read path only `try_lock`s this: under
    /// reader contention the micro-optimisation degrades to a miss instead
    /// of serialising the readers. Write paths lock it normally.
    reuse: Mutex<ReuseState>,
    /// Packed `(file, block)` of the most recent *device* access, used to
    /// decide whether a read is sequential for the cost model.
    last_device_access: AtomicU64,
    /// Frames parked by scan-readahead waves, consumed by later reads.
    readahead: Mutex<ReadaheadCache>,
    stats: IoStats,
    /// Latency/pause telemetry shared by every layer above this disk (the
    /// same sharing pattern as [`IoStats`]): index internals record SMO
    /// spans, write fronts record drain spans, the harness records per-op
    /// latencies — all through [`Disk::telemetry`].
    telemetry: lidx_telemetry::TelemetryRegistry,
    device: DeviceModel,
    block_size: usize,
    reuse_last_block: bool,
    simulate_latency: bool,
    memory_resident: [bool; 4],
    queue_depth: usize,
    /// Verified reads + stamped writes (see [`DiskConfig::verify_checksums`]).
    verify_checksums: bool,
    /// Monotonic write counter feeding the block stamps' generation field;
    /// resumed from the superblock on reopen.
    write_generation: AtomicU64,
    /// Backing directory of a durable disk ([`Disk::create_durable`] /
    /// [`Disk::open`]); `None` for in-memory evaluation disks.
    dir: Option<std::path::PathBuf>,
    /// Generation of the last superblock written (or loaded); the next
    /// [`Disk::persist`] writes generation + 1 into the alternate slot.
    superblock_generation: AtomicU64,
    /// Fault plan consulted by [`Disk::persist`] for superblock tears. Block
    /// level faults live in the [`crate::fault::FaultingBackend`] wrapper.
    fault_plan: Option<crate::fault::FaultPlan>,
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("block_size", &self.block_size)
            .field("device", &self.device.name)
            .field("reads", &self.stats.reads())
            .field("writes", &self.stats.writes())
            .finish()
    }
}

impl Disk {
    /// Creates a disk over an in-memory backend (the harness default).
    pub fn in_memory(config: DiskConfig) -> Arc<Self> {
        Self::with_backend(Box::new(MemoryBackend::new(config.block_size)), config)
    }

    /// Creates a disk over an arbitrary backend. The backend's block size
    /// must match the configuration.
    pub fn with_backend(backend: Box<dyn StorageBackend>, config: DiskConfig) -> Arc<Self> {
        Self::build(backend, config, None, None, 0, 0)
    }

    fn build(
        backend: Box<dyn StorageBackend>,
        config: DiskConfig,
        dir: Option<std::path::PathBuf>,
        fault_plan: Option<crate::fault::FaultPlan>,
        superblock_generation: u64,
        write_generation: u64,
    ) -> Arc<Self> {
        assert_eq!(
            backend.block_size(),
            config.block_size,
            "backend block size must match DiskConfig::block_size"
        );
        let mut pager = Pager::new();
        pager.set_reuse_freed(config.reuse_freed_space);
        Arc::new(Disk {
            backend,
            pool: ShardedBufferPool::with_config(config.pool_config()),
            pager: Mutex::new(pager),
            reuse: Mutex::new(ReuseState {
                last_read: None,
                frame: BlockRef::from_vec(vec![0; config.block_size]),
            }),
            last_device_access: AtomicU64::new(NO_ACCESS),
            readahead: Mutex::new(ReadaheadCache::new()),
            stats: IoStats::new(),
            telemetry: lidx_telemetry::TelemetryRegistry::new(),
            device: config.device,
            block_size: config.block_size,
            reuse_last_block: config.reuse_last_block,
            simulate_latency: config.simulate_latency,
            memory_resident: config.memory_resident,
            queue_depth: config.queue_depth.max(1),
            verify_checksums: config.verify_checksums,
            write_generation: AtomicU64::new(write_generation),
            dir,
            superblock_generation: AtomicU64::new(superblock_generation),
            fault_plan,
        })
    }

    /// Creates a fresh durable disk in `dir` (wiping any previous store
    /// there), with per-block checksums on. The disk has no superblock until
    /// the first [`Disk::persist`]; crash before that and [`Disk::open`]
    /// reports the store as uninitialised.
    pub fn create_durable(
        dir: impl Into<std::path::PathBuf>,
        config: DiskConfig,
    ) -> StorageResult<Arc<Self>> {
        Self::create_durable_with_faults(dir, config, None)
    }

    /// [`Disk::create_durable`] with a [`crate::fault::FaultPlan`] wrapped
    /// around the file backend (and consulted for superblock tears).
    pub fn create_durable_with_faults(
        dir: impl Into<std::path::PathBuf>,
        mut config: DiskConfig,
        plan: Option<crate::fault::FaultPlan>,
    ) -> StorageResult<Arc<Self>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".blk") || name.ends_with(".sum") || name.starts_with("superblock.") {
                std::fs::remove_file(&path)?;
            }
        }
        config.verify_checksums = true;
        let file_backend = crate::backend::FileBackend::new(&dir, config.block_size)?;
        let backend: Box<dyn StorageBackend> = match &plan {
            Some(p) => {
                Box::new(crate::fault::FaultingBackend::new(Box::new(file_backend), p.clone()))
            }
            None => Box::new(file_backend),
        };
        Ok(Self::build(backend, config, Some(dir), plan, 0, 0))
    }

    /// Reopens a durable disk from its directory, returning the disk and the
    /// best valid superblock (highest generation whose CRC checks out — a
    /// torn newest slot falls back to the previous checkpoint). The
    /// superblock's per-file block counts are authoritative; a torn trailing
    /// extend cannot shrink the visible address space. All caches start
    /// cold and the write generation resumes from the checkpoint.
    pub fn open(
        dir: impl Into<std::path::PathBuf>,
        config: DiskConfig,
    ) -> StorageResult<(Arc<Self>, crate::format::Superblock)> {
        Self::open_with_faults(dir, config, None)
    }

    /// [`Disk::open`] with a [`crate::fault::FaultPlan`] wrapped around the
    /// file backend (e.g. to inject transient read errors during replay).
    pub fn open_with_faults(
        dir: impl Into<std::path::PathBuf>,
        mut config: DiskConfig,
        plan: Option<crate::fault::FaultPlan>,
    ) -> StorageResult<(Arc<Self>, crate::format::Superblock)> {
        let dir = dir.into();
        let sb = crate::format::Superblock::load_best(&dir)?.ok_or_else(|| {
            StorageError::Corrupt(format!("no valid superblock in {}", dir.display()))
        })?;
        config.verify_checksums = true;
        let file_backend =
            crate::backend::FileBackend::open_existing(&dir, config.block_size, &sb.file_blocks)?;
        let backend: Box<dyn StorageBackend> = match &plan {
            Some(p) => {
                Box::new(crate::fault::FaultingBackend::new(Box::new(file_backend), p.clone()))
            }
            None => Box::new(file_backend),
        };
        let disk =
            Self::build(backend, config, Some(dir), plan, sb.generation, sb.write_generation);
        disk.invalidate_caches();
        Ok((disk, sb))
    }

    /// Writes a new superblock checkpoint carrying `meta` (the index layer's
    /// opaque root record) into the alternate slot. `clean_shutdown` marks a
    /// graceful close; checkpoints taken while running pass `false`, so a
    /// later crash is detectable. Consults the fault plan for an armed
    /// superblock tear (the torn slot is left on disk and an error is
    /// returned, simulating a crash mid-checkpoint).
    pub fn persist(&self, meta: &[u8], clean_shutdown: bool) -> StorageResult<()> {
        let dir = self.dir.as_deref().ok_or_else(|| {
            StorageError::Corrupt("persist() on a disk without a backing directory".into())
        })?;
        let file_blocks: Vec<u32> = (0..self.backend.num_files())
            .map(|f| self.backend.num_blocks(f))
            .collect::<StorageResult<_>>()?;
        let generation = self.superblock_generation.fetch_add(1, Ordering::SeqCst) + 1;
        let sb = crate::format::Superblock {
            format_version: crate::format::FORMAT_VERSION,
            generation,
            write_generation: self.write_generation.load(Ordering::SeqCst),
            clean_shutdown,
            file_blocks,
            meta: meta.to_vec(),
        };
        let tear = self.fault_plan.as_ref().and_then(|p| p.take_superblock_tear());
        sb.write_slot(dir, tear)
    }

    /// The backing directory of a durable disk, if any.
    pub fn dir(&self) -> Option<&std::path::Path> {
        self.dir.as_deref()
    }

    /// The fault plan wired into this disk, if any.
    pub fn fault_plan(&self) -> Option<&crate::fault::FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Drops every cached frame and forgets all access history: buffer pool,
    /// readahead cache (its generation tags advance, so stale order entries
    /// can never resurrect a pre-clear frame), the single-slot reuse cache
    /// and the sequential-access detector. Called on [`Disk::open`] and
    /// after recovery replay, so a parked pre-crash frame can never serve a
    /// read that should see recovered bytes.
    pub fn invalidate_caches(&self) {
        self.pool.clear();
        self.readahead.lock().clear();
        self.reuse.lock().last_read = None;
        self.last_device_access.store(NO_ACCESS, Ordering::Relaxed);
    }

    fn is_memory_resident(&self, kind: BlockKind) -> bool {
        self.memory_resident[DiskConfig::kind_slot(kind)]
    }

    /// The block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The device cost model in use.
    pub fn device(&self) -> DeviceModel {
        self.device
    }

    /// The I/O statistics accumulated so far.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Convenience: a snapshot of the current statistics.
    pub fn snapshot(&self) -> OpStats {
        self.stats.snapshot()
    }

    /// The latency/pause telemetry registry of this disk. Everything built
    /// on the disk — indexes, write fronts, the router, the harness —
    /// records op latencies and pause spans here, so one registry describes
    /// one index instance end to end.
    pub fn telemetry(&self) -> &lidx_telemetry::TelemetryRegistry {
        &self.telemetry
    }

    /// Accumulated simulated device time, in seconds.
    pub fn simulated_seconds(&self) -> f64 {
        self.stats.device_ns() as f64 / 1e9
    }

    /// Charges `ns` of device time, optionally realising it as actual
    /// blocking time. Called outside every lock so concurrent readers
    /// overlap their waits exactly like outstanding disk requests.
    fn charge(&self, ns: u64) {
        self.stats.record_device_ns(ns);
        if self.simulate_latency && ns > 0 {
            std::thread::sleep(Duration::from_nanos(ns));
        }
    }

    /// Creates a new file and returns its id.
    pub fn create_file(&self) -> StorageResult<FileId> {
        self.backend.create_file()
    }

    /// Number of blocks currently allocated in `file`.
    pub fn num_blocks(&self, file: FileId) -> StorageResult<u32> {
        self.backend.num_blocks(file)
    }

    /// Grows `file`'s logical block count to cover every block physically
    /// present in the backend, returning the new count. Used by WAL reopen:
    /// the superblock's counts are authoritative for index files, but the
    /// log legitimately grows between checkpoints and its synced tail must
    /// stay visible to replay (every adopted block is still validated by
    /// stamp, epoch and record CRC before anything is trusted).
    pub fn adopt_physical_size(&self, file: FileId) -> StorageResult<u32> {
        let adopted = self.backend.adopt_physical_size(file)?;
        self.pager.lock().note_adopted(file, adopted);
        Ok(adopted)
    }

    /// Total blocks allocated across all files (the "storage size on disk"
    /// metric of §6.3).
    pub fn total_blocks(&self) -> u64 {
        (0..self.backend.num_files()).map(|f| self.backend.num_blocks(f).unwrap_or(0) as u64).sum()
    }

    /// Total bytes allocated across all files.
    pub fn total_bytes(&self) -> u64 {
        self.total_blocks() * self.block_size as u64
    }

    /// Allocates `count` contiguous blocks in `file`, reusing freed space if
    /// the disk was configured to do so, and returns the first block id.
    pub fn allocate(&self, file: FileId, count: u32) -> StorageResult<BlockId> {
        self.stats.record_alloc(u64::from(count));
        let mut pager = self.pager.lock();
        if let Some(start) = pager.try_reuse(file, count) {
            return Ok(start);
        }
        let start = self.backend.extend(file, count)?;
        pager.note_extend(file, start, count);
        Ok(start)
    }

    /// Marks `count` blocks starting at `start` as no longer used. The space
    /// is only reused if [`DiskConfig::reuse_freed_space`] was set.
    pub fn free(&self, file: FileId, start: BlockId, count: u32) {
        self.stats.record_free(u64::from(count));
        for b in start..start + count {
            self.pool.invalidate(file, b);
        }
        {
            let mut readahead = self.readahead.lock();
            for b in start..start + count {
                readahead.take(&(file, b));
            }
        }
        {
            let mut reuse = self.reuse.lock();
            if reuse.last_read.is_some_and(|(f, b)| f == file && b >= start && b < start + count) {
                reuse.last_read = None;
            }
        }
        self.pager.lock().free(file, start, count);
    }

    /// Blocks currently sitting in freed (reclaimable) extents of `file`.
    pub fn freed_blocks(&self, file: FileId) -> u64 {
        self.pager.lock().freed_blocks(file)
    }

    /// Refreshes the reuse slot with the frame just obtained (one `Arc`
    /// clone). Best-effort: skipped when another thread holds the slot.
    fn note_last_read(&self, file: FileId, block: BlockId, frame: &BlockRef) {
        if let Some(mut reuse) = self.reuse.try_lock() {
            reuse.last_read = Some((file, block));
            reuse.frame = frame.clone();
        }
    }

    /// Reads one block from the backend with bounded-backoff retry of
    /// transient errors and (when configured) stamp verification. This is
    /// the single point every device read funnels through, so injected
    /// `EIO`s and corrupted blocks surface as typed errors on every path.
    fn backend_read(&self, file: FileId, block: BlockId, buf: &mut [u8]) -> StorageResult<()> {
        /// Transient errors are retried this many times before surfacing.
        const MAX_READ_RETRIES: u32 = 4;
        let mut attempt = 0u32;
        loop {
            match self.backend.read_block(file, block, buf) {
                Err(StorageError::Transient(msg)) => {
                    if attempt >= MAX_READ_RETRIES {
                        return Err(StorageError::Transient(msg));
                    }
                    attempt += 1;
                    self.stats.record_io_retry();
                    // Exponential backoff, microseconds: 1, 2, 4, 8.
                    std::thread::sleep(Duration::from_micros(1 << (attempt - 1)));
                }
                other => {
                    other?;
                    break;
                }
            }
        }
        if self.verify_checksums {
            if let Some(bytes) = self.backend.read_stamp(file, block)? {
                let arr: [u8; crate::format::BlockStamp::BYTES] =
                    bytes.as_slice().try_into().map_err(|_| {
                        StorageError::Corrupt("block stamp has the wrong length".into())
                    })?;
                // A decodable stamp must verify; an all-zero (absent) stamp
                // means the block was never written and is legitimately
                // zero-filled.
                if let Some(stamp) = crate::format::BlockStamp::decode(&arr) {
                    if let Err(e) = stamp.verify(file, block, buf) {
                        self.stats.record_checksum_failure();
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Loads one block from the backend into a freshly pinned frame.
    fn load_frame(&self, file: FileId, block: BlockId) -> StorageResult<BlockRef> {
        let mut buf = vec![0u8; self.block_size];
        self.backend_read(file, block, &mut buf)?;
        Ok(BlockRef::from_vec(buf))
    }

    /// Reads one block as a pinned, zero-copy [`BlockRef`], charging the
    /// device unless the block is served by last-block reuse or the buffer
    /// pool. Point-access class; see [`Disk::read_ref_class`].
    ///
    /// This is the hot-path read API: a reuse or pool hit is one `Arc` clone
    /// — no allocation, no byte copy — and a miss loads the block into a new
    /// frame exactly once, which the pool then shares (the pool insert is
    /// another clone, not a second copy). The returned frame stays valid —
    /// with the bytes it was pinned with — across pool eviction, block frees
    /// and subsequent writes to the same block.
    pub fn read_ref(
        &self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
    ) -> StorageResult<BlockRef> {
        self.read_ref_class(file, block, kind, AccessClass::Point)
    }

    /// [`Disk::read_ref`] tagged as part of a scan stream: the buffer pool
    /// admits the block under scan class (2Q: probation only, no promotion;
    /// CLOCK: no reference bit), so a streaming pass cannot flush the
    /// point-lookup working set. Index scan paths use this for the blocks
    /// they stream over; their descent to the first block stays point-class.
    pub fn read_ref_scan(
        &self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
    ) -> StorageResult<BlockRef> {
        self.read_ref_class(file, block, kind, AccessClass::Scan)
    }

    /// Reads one block as a pinned, zero-copy [`BlockRef`] under an explicit
    /// [`AccessClass`] (see [`Disk::read_ref`] for the pinning guarantees
    /// and [`Disk::read_ref_scan`] for what the class changes).
    pub fn read_ref_class(
        &self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
        class: AccessClass,
    ) -> StorageResult<BlockRef> {
        self.read_ref_hinted(file, block, kind, class, SeqHint::Auto)
    }

    /// [`Disk::read_ref_class`] with an explicit sequential-cost hint
    /// ([`SeqHint`]): scan streams that know their block layout pass
    /// `Sequential` so concurrent readers cannot destroy each other's
    /// sequentiality through the shared last-access word. With
    /// `SeqHint::Auto` this is exactly `read_ref_class`.
    pub fn read_ref_hinted(
        &self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
        class: AccessClass,
        hint: SeqHint,
    ) -> StorageResult<BlockRef> {
        if class == AccessClass::Scan {
            self.stats.record_scan_read();
        }
        // Memory-resident kinds (§6.2): serve the read without touching the
        // *device* accounting. The copy-behaviour counters still apply — a
        // fresh frame is allocated and handed out, so it counts as pinned.
        if self.is_memory_resident(kind) {
            let frame = self.load_frame(file, block)?;
            self.stats.record_frame_pinned();
            return Ok(frame);
        }

        // Last-block reuse (§6.5): re-reading the block we just fetched does
        // not touch the device again.
        if self.reuse_last_block {
            if let Some(reuse) = self.reuse.try_lock() {
                if reuse.last_read == Some((file, block)) {
                    self.stats.record_reuse_hit();
                    self.stats.record_frame_pinned();
                    return Ok(reuse.frame.clone());
                }
            }
        }

        // Buffer pool.
        if self.pool.capacity() > 0 {
            if let Some(frame) = self.pool.get_ref(file, block, class) {
                self.stats.record_buffer_hit();
                self.stats.record_frame_pinned();
                self.note_last_read(file, block, &frame);
                return Ok(frame);
            }
        }

        if self.queue_depth > 1 {
            // Readahead cache: a prefetch wave already paid the device for
            // this block; consume the parked frame. The read was recorded
            // when the prefetch fetched it, so this is a cache hit.
            let parked = self.readahead.lock().take(&(file, block));
            if let Some(frame) = parked {
                self.stats.record_readahead_hit();
                self.stats.record_frame_pinned();
                if self.pool.capacity() > 0 {
                    self.pool.put_ref(file, block, kind, class, frame.clone());
                }
                self.note_last_read(file, block, &frame);
                return Ok(frame);
            }
            // Scan-class miss: fold the demand fetch and an extent-style
            // readahead of the next `queue_depth - 1` blocks into one
            // completion wave (the ext4-extent-walker model) — the wave is
            // charged `max`, so the sequential prefetches ride along with
            // the demand miss for free.
            if class == AccessClass::Scan {
                return self.scan_miss_with_readahead(file, block, kind, hint);
            }
        }

        // Device access: load into a fresh frame once; the pool and the
        // reuse slot share it from there.
        let frame = self.load_frame(file, block)?;
        let prev = self.last_device_access.swap(pack_access(file, block), Ordering::Relaxed);
        let sequential = match hint {
            SeqHint::Auto => prev != NO_ACCESS && prev == pack_access(file, block.wrapping_sub(1)),
            SeqHint::Sequential => true,
            SeqHint::Random => false,
        };
        self.stats.record_read(kind);
        self.charge(self.device.read_cost(sequential));

        if self.pool.capacity() > 0 {
            self.pool.put_ref(file, block, kind, class, frame.clone());
        }
        self.note_last_read(file, block, &frame);
        self.stats.record_frame_pinned();
        Ok(frame)
    }

    /// Serves a scan-class device miss at `block` together with a readahead
    /// prefetch of the following blocks of the extent, all as one completion
    /// wave. Only called with `queue_depth > 1`.
    fn scan_miss_with_readahead(
        &self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
        hint: SeqHint,
    ) -> StorageResult<BlockRef> {
        let end = self.num_blocks(file).unwrap_or(0);
        let mut reqs = Vec::with_capacity(self.queue_depth);
        reqs.push(WaveReq { file, block, kind, class: AccessClass::Scan, hint, deliver: true });
        let mut next = block.saturating_add(1);
        while reqs.len() < self.queue_depth && next < end {
            reqs.push(WaveReq {
                file,
                block: next,
                kind,
                class: AccessClass::Scan,
                hint: SeqHint::Sequential,
                deliver: false,
            });
            next += 1;
        }
        let mut frames = self.run_wave(&reqs)?;
        frames
            .swap_remove(0)
            .ok_or_else(|| StorageError::Corrupt("wave dropped a delivered frame".into()))
    }

    /// Processes one completion wave of the outstanding-read engine: every
    /// request is served (cache hits as usual, misses loaded from the
    /// backend), but the device is charged the *max* of the wave's per-miss
    /// costs instead of their sum — the requests are in flight together, so
    /// the wave completes when its slowest member does. The saved difference
    /// is recorded in [`IoStats::overlap_saved_ns`]. A wave of one request
    /// charges exactly what the synchronous path charges.
    ///
    /// Returns one entry per request, aligned with `reqs`: `Some(frame)` for
    /// delivered requests, `None` for prefetches (parked or skipped).
    pub(crate) fn run_wave(&self, reqs: &[WaveReq]) -> StorageResult<Vec<Option<BlockRef>>> {
        let wave_start = std::time::Instant::now();
        self.stats.record_ios_submitted(reqs.len() as u64);
        let mut results: Vec<Option<BlockRef>> = Vec::with_capacity(reqs.len());
        results.resize(reqs.len(), None);
        // Misses fetched by this wave: (request index, frame, cost).
        let mut misses: Vec<(usize, BlockRef, u64)> = Vec::new();
        // Blocks already being fetched by this wave, for duplicate requests.
        let mut in_wave: HashMap<(FileId, BlockId), usize> = HashMap::new();
        let mut total_cost = 0u64;
        let mut max_cost = 0u64;

        for (i, req) in reqs.iter().enumerate() {
            let at = (req.file, req.block);
            if !req.deliver {
                // Prefetch: skip silently when the block is already cached
                // (or free to read) — parking it would only waste a device
                // slot.
                if self.is_memory_resident(req.kind)
                    || in_wave.contains_key(&at)
                    || self.readahead.lock().contains(&at)
                {
                    continue;
                }
                if self.pool.capacity() > 0 {
                    if let Some(frame) = self.pool.get_ref(req.file, req.block, req.class) {
                        // Pool-resident: re-park the frame (free — no device
                        // slot) so the wave's consumer still finds it even if
                        // the pool evicts the block before the probe
                        // resolves, e.g. under the churn of the batch's own
                        // consumptions.
                        self.readahead.lock().park(at, frame);
                        continue;
                    }
                }
            } else {
                if self.is_memory_resident(req.kind) {
                    let frame = self.load_frame(req.file, req.block)?;
                    self.stats.record_frame_pinned();
                    results[i] = Some(frame);
                    continue;
                }
                if self.reuse_last_block {
                    if let Some(reuse) = self.reuse.try_lock() {
                        if reuse.last_read == Some(at) {
                            self.stats.record_reuse_hit();
                            self.stats.record_frame_pinned();
                            results[i] = Some(reuse.frame.clone());
                            continue;
                        }
                    }
                }
                if self.pool.capacity() > 0 {
                    if let Some(frame) = self.pool.get_ref(req.file, req.block, req.class) {
                        self.stats.record_buffer_hit();
                        self.stats.record_frame_pinned();
                        self.note_last_read(req.file, req.block, &frame);
                        results[i] = Some(frame);
                        continue;
                    }
                }
                let parked = self.readahead.lock().take(&at);
                if let Some(frame) = parked {
                    self.stats.record_readahead_hit();
                    self.stats.record_frame_pinned();
                    if self.pool.capacity() > 0 {
                        self.pool.put_ref(req.file, req.block, req.kind, req.class, frame.clone());
                    }
                    self.note_last_read(req.file, req.block, &frame);
                    results[i] = Some(frame);
                    continue;
                }
                if let Some(&m) = in_wave.get(&at) {
                    // A duplicate of a block this wave is already fetching:
                    // share the in-flight frame, like last-block reuse.
                    self.stats.record_reuse_hit();
                    self.stats.record_frame_pinned();
                    results[i] = Some(misses[m].1.clone());
                    continue;
                }
            }

            // Device fetch.
            let frame = self.load_frame(req.file, req.block)?;
            let prev =
                self.last_device_access.swap(pack_access(req.file, req.block), Ordering::Relaxed);
            let sequential = match req.hint {
                SeqHint::Auto => {
                    prev != NO_ACCESS && prev == pack_access(req.file, req.block.wrapping_sub(1))
                }
                SeqHint::Sequential => true,
                SeqHint::Random => false,
            };
            self.stats.record_read(req.kind);
            let cost = self.device.read_cost(sequential);
            total_cost += cost;
            max_cost = max_cost.max(cost);
            in_wave.insert(at, misses.len());
            misses.push((i, frame, cost));
        }

        // One charge for the whole wave: its members were in flight together.
        self.stats.note_inflight(misses.len() as u64);
        self.charge(max_cost);
        self.stats.record_overlap_saved_ns(total_cost - max_cost);
        // A wave that hit the device is an I/O pause; waves served entirely
        // from cache are free and would only flood the histogram with noise.
        if !misses.is_empty() {
            self.telemetry.record_ns(OpClass::Wave, wave_start.elapsed().as_nanos() as u64);
            self.telemetry.add(OpClass::Wave, misses.len() as u64);
        }

        // Publish after completion, in submission order, exactly like the
        // synchronous path publishes after its charge.
        let mut parked: Vec<((FileId, BlockId), BlockRef)> = Vec::new();
        for (i, frame, _) in misses {
            let req = &reqs[i];
            if req.deliver {
                if self.pool.capacity() > 0 {
                    self.pool.put_ref(req.file, req.block, req.kind, req.class, frame.clone());
                }
                self.note_last_read(req.file, req.block, &frame);
                self.stats.record_frame_pinned();
                results[i] = Some(frame);
            } else {
                parked.push(((req.file, req.block), frame));
            }
        }
        if !parked.is_empty() {
            let mut cache = self.readahead.lock();
            for (key, frame) in parked {
                cache.park(key, frame);
            }
        }
        self.stats.record_ios_completed(reqs.len() as u64);
        Ok(results)
    }

    /// The configured outstanding-read queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Reads one block into `buf`, charging the device unless the block is
    /// served by last-block reuse or the buffer pool.
    ///
    /// This is the legacy copying path (kept for write-side read-modify-write
    /// and external buffers); every call pays one block copy, recorded in
    /// [`IoStats::bytes_copied`]. Hot read paths use [`Disk::read_ref`].
    pub fn read(
        &self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
        buf: &mut [u8],
    ) -> StorageResult<()> {
        if buf.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: buf.len(), expected: self.block_size });
        }
        if self.is_memory_resident(kind) {
            // Avoid the frame allocation entirely: memory-resident reads can
            // fill the caller's buffer straight from the backend. It is
            // still a copy into a caller buffer, so it is still recorded.
            self.backend_read(file, block, buf)?;
            self.stats.record_bytes_copied(self.block_size as u64);
            return Ok(());
        }
        let frame = self.read_ref(file, block, kind)?;
        buf.copy_from_slice(&frame);
        self.stats.record_bytes_copied(self.block_size as u64);
        Ok(())
    }

    /// Reads one block into a freshly allocated vector (legacy copying path;
    /// see [`Disk::read`]).
    pub fn read_vec(
        &self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
    ) -> StorageResult<Vec<u8>> {
        let mut buf = vec![0u8; self.block_size];
        self.read(file, block, kind, &mut buf)?;
        Ok(buf)
    }

    /// Writes one block. Writes always reach the device (write-through).
    pub fn write(
        &self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
        data: &[u8],
    ) -> StorageResult<()> {
        if data.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: data.len(), expected: self.block_size });
        }
        self.backend.write_block(file, block, data)?;
        if self.verify_checksums {
            // Stamp after a successful block write only: a failed or torn
            // write leaves the previous stamp, so a later verified read of
            // the torn block reports the mismatch instead of trusting it.
            let generation = self.write_generation.fetch_add(1, Ordering::Relaxed) + 1;
            let stamp = crate::format::BlockStamp {
                magic: crate::format::BlockStamp::MAGIC,
                generation: generation as u32,
                crc: crate::format::crc32(data),
            };
            self.backend.write_stamp(file, block, &stamp.encode())?;
        }
        if !self.is_memory_resident(kind) {
            self.last_device_access.store(pack_access(file, block), Ordering::Relaxed);
            self.stats.record_write(kind);
            self.charge(self.device.write_cost());
        }
        // A parked readahead frame for this block is now stale.
        self.readahead.lock().take(&(file, block));
        // Publish at most one new frame for the cached copies; readers that
        // pinned the previous frame keep their snapshot (immutable frames).
        let mut frame: Option<BlockRef> = None;
        if self.pool.capacity() > 0 {
            let f = BlockRef::from_vec(data.to_vec());
            self.pool.put_ref(file, block, kind, AccessClass::Point, f.clone());
            frame = Some(f);
        }
        let mut reuse = self.reuse.lock();
        if reuse.last_read == Some((file, block)) {
            reuse.frame = frame.unwrap_or_else(|| BlockRef::from_vec(data.to_vec()));
        }
        Ok(())
    }

    /// Reads `nblocks` consecutive blocks starting at `start` and returns the
    /// concatenated bytes. Each block is charged individually; blocks after
    /// the first carry an explicit [`SeqHint::Sequential`] — the extent *is*
    /// contiguous, so concurrent readers must not be able to turn its
    /// follow-up blocks into random charges through the shared last-access
    /// word.
    pub fn read_extent(
        &self,
        file: FileId,
        start: BlockId,
        kind: BlockKind,
        nblocks: u32,
    ) -> StorageResult<Vec<u8>> {
        let mut out = vec![0u8; nblocks as usize * self.block_size];
        for i in 0..nblocks {
            let off = i as usize * self.block_size;
            let buf = &mut out[off..off + self.block_size];
            if self.is_memory_resident(kind) {
                self.backend_read(file, start + i, buf)?;
                self.stats.record_bytes_copied(self.block_size as u64);
                continue;
            }
            let hint = if i == 0 { SeqHint::Auto } else { SeqHint::Sequential };
            let frame = self.read_ref_hinted(file, start + i, kind, AccessClass::Point, hint)?;
            buf.copy_from_slice(&frame);
            self.stats.record_bytes_copied(self.block_size as u64);
        }
        Ok(out)
    }

    /// Writes `data` across consecutive blocks starting at `start`, padding
    /// the final block with zeros. Returns the number of blocks written.
    pub fn write_extent(
        &self,
        file: FileId,
        start: BlockId,
        kind: BlockKind,
        data: &[u8],
    ) -> StorageResult<u32> {
        let bs = self.block_size;
        let nblocks = data.len().div_ceil(bs).max(1) as u32;
        let mut block_buf = vec![0u8; bs];
        for i in 0..nblocks {
            let off = i as usize * bs;
            let end = (off + bs).min(data.len());
            block_buf.fill(0);
            if off < data.len() {
                block_buf[..end - off].copy_from_slice(&data[off..end]);
            }
            self.write(file, start + i, kind, &block_buf)?;
        }
        Ok(nblocks)
    }

    /// Number of blocks needed to store `bytes` bytes on this disk.
    pub fn blocks_for(&self, bytes: usize) -> u32 {
        bytes.div_ceil(self.block_size).max(1) as u32
    }

    /// Forgets the last-read block (used by the harness between queries so
    /// reuse never spans two operations).
    pub fn reset_access_state(&self) {
        self.reuse.lock().last_read = None;
        self.last_device_access.store(NO_ACCESS, Ordering::Relaxed);
        self.readahead.lock().clear();
    }

    /// Empties the buffer pool and the readahead cache (used between
    /// workload phases).
    pub fn clear_buffer(&self) {
        self.pool.clear();
        self.readahead.lock().clear();
    }

    /// Buffer pool hit count.
    pub fn buffer_hits(&self) -> u64 {
        self.pool.hits()
    }

    /// Buffer pool capacity in blocks.
    pub fn buffer_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// The buffer pool configuration in use (capacity, policy, partitions).
    pub fn buffer_config(&self) -> &PoolConfig {
        self.pool.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(bs: usize) -> Arc<Disk> {
        Disk::in_memory(DiskConfig::with_block_size(bs))
    }

    #[test]
    fn allocate_read_write_roundtrip() {
        let d = disk(128);
        let f = d.create_file().unwrap();
        let b = d.allocate(f, 3).unwrap();
        assert_eq!(b, 0);
        let mut data = vec![0u8; 128];
        data[0] = 42;
        d.write(f, b + 1, BlockKind::Leaf, &data).unwrap();
        let out = d.read_vec(f, b + 1, BlockKind::Leaf).unwrap();
        assert_eq!(out[0], 42);
        assert_eq!(d.stats().reads(), 1);
        assert_eq!(d.stats().writes(), 1);
        assert_eq!(d.total_blocks(), 3);
        assert_eq!(d.total_bytes(), 3 * 128);
    }

    #[test]
    fn last_block_reuse_skips_device_charge() {
        let d = disk(128);
        let f = d.create_file().unwrap();
        d.allocate(f, 2).unwrap();
        let mut buf = vec![0u8; 128];
        d.read(f, 0, BlockKind::Inner, &mut buf).unwrap();
        d.read(f, 0, BlockKind::Inner, &mut buf).unwrap();
        assert_eq!(d.stats().reads(), 1, "second read of same block must be a reuse hit");
        assert_eq!(d.stats().reuse_hits(), 1);
        d.read(f, 1, BlockKind::Inner, &mut buf).unwrap();
        d.read(f, 0, BlockKind::Inner, &mut buf).unwrap();
        assert_eq!(d.stats().reads(), 3, "reuse only applies to the immediately previous block");
        d.reset_access_state();
        d.read(f, 0, BlockKind::Inner, &mut buf).unwrap();
        assert_eq!(d.stats().reads(), 4);
    }

    #[test]
    fn reuse_can_be_disabled() {
        let d = Disk::in_memory(DiskConfig::with_block_size(128).reuse_last_block(false));
        let f = d.create_file().unwrap();
        d.allocate(f, 1).unwrap();
        let mut buf = vec![0u8; 128];
        d.read(f, 0, BlockKind::Leaf, &mut buf).unwrap();
        d.read(f, 0, BlockKind::Leaf, &mut buf).unwrap();
        assert_eq!(d.stats().reads(), 2);
    }

    #[test]
    fn buffer_pool_absorbs_repeat_reads() {
        let d = Disk::in_memory(DiskConfig::with_block_size(128).buffer_blocks(4));
        let f = d.create_file().unwrap();
        d.allocate(f, 8).unwrap();
        let mut buf = vec![0u8; 128];
        for b in 0..4u32 {
            d.read(f, b, BlockKind::Leaf, &mut buf).unwrap();
        }
        assert_eq!(d.stats().reads(), 4);
        // Re-reading the cached blocks (not consecutively) hits the pool.
        for b in [2u32, 0, 3, 1] {
            d.read(f, b, BlockKind::Leaf, &mut buf).unwrap();
        }
        assert_eq!(d.stats().reads(), 4);
        assert!(d.buffer_hits() >= 3);
    }

    #[test]
    fn device_model_accumulates_time() {
        let cfg = DiskConfig::with_block_size(128).device(DeviceModel::custom("t", 100, 10, 1));
        let d = Disk::in_memory(cfg);
        let f = d.create_file().unwrap();
        d.allocate(f, 3).unwrap();
        let mut buf = vec![0u8; 128];
        d.read(f, 0, BlockKind::Leaf, &mut buf).unwrap(); // random: 100
        d.read(f, 1, BlockKind::Leaf, &mut buf).unwrap(); // sequential: 1
        d.read(f, 0, BlockKind::Leaf, &mut buf).unwrap(); // random: 100
        d.write(f, 2, BlockKind::Leaf, &buf).unwrap(); // write: 10
        assert_eq!(d.stats().device_ns(), 100 + 1 + 100 + 10);
        assert!(d.simulated_seconds() > 0.0);
    }

    #[test]
    fn extents_roundtrip_across_blocks() {
        let d = disk(64);
        let f = d.create_file().unwrap();
        let data: Vec<u8> = (0..150u8).collect();
        let start = d.allocate(f, d.blocks_for(data.len())).unwrap();
        let n = d.write_extent(f, start, BlockKind::Leaf, &data).unwrap();
        assert_eq!(n, 3);
        let out = d.read_extent(f, start, BlockKind::Leaf, n).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
        assert!(out[data.len()..].iter().all(|&b| b == 0));
        assert_eq!(d.stats().writes(), 3);
    }

    #[test]
    fn free_invalidates_cached_copies() {
        let d = Disk::in_memory(DiskConfig::with_block_size(128).buffer_blocks(4));
        let f = d.create_file().unwrap();
        d.allocate(f, 2).unwrap();
        let mut buf = vec![0u8; 128];
        d.read(f, 0, BlockKind::Leaf, &mut buf).unwrap();
        d.free(f, 0, 1);
        assert_eq!(d.stats().freed_blocks(), 1);
        // Reading again must go back to the device (cache + reuse are invalidated).
        d.read(f, 0, BlockKind::Leaf, &mut buf).unwrap();
        assert_eq!(d.stats().reads(), 2);
    }

    #[test]
    fn freed_space_reuse_is_opt_in() {
        let d = Disk::in_memory(DiskConfig::with_block_size(128).reuse_freed_space(true));
        let f = d.create_file().unwrap();
        let a = d.allocate(f, 4).unwrap();
        d.free(f, a, 4);
        let b = d.allocate(f, 2).unwrap();
        assert_eq!(b, a, "freed extent must be reused when enabled");
        assert_eq!(d.total_blocks(), 4, "no growth when reusing freed space");

        let d2 = Disk::in_memory(DiskConfig::with_block_size(128));
        let f2 = d2.create_file().unwrap();
        let a2 = d2.allocate(f2, 4).unwrap();
        d2.free(f2, a2, 4);
        let b2 = d2.allocate(f2, 2).unwrap();
        assert_eq!(b2, 4, "without reuse the file keeps growing");
        assert_eq!(d2.freed_blocks(f2), 4);
    }

    #[test]
    fn bad_buffer_sizes_are_rejected() {
        let d = disk(128);
        let f = d.create_file().unwrap();
        d.allocate(f, 1).unwrap();
        let mut small = vec![0u8; 64];
        assert!(d.read(f, 0, BlockKind::Leaf, &mut small).is_err());
        assert!(d.write(f, 0, BlockKind::Leaf, &small).is_err());
    }

    #[test]
    fn concurrent_readers_observe_consistent_blocks_and_counters() {
        // 8 reader threads over a frozen set of blocks: every read must
        // return an untorn block and the device-time counter must equal the
        // flat per-read charge times the device read count (no torn or
        // double-charged statistics).
        let d = Disk::in_memory(
            DiskConfig::with_block_size(128)
                .device(DeviceModel::custom("flat", 1, 7, 1))
                .buffer_blocks(8),
        );
        let f = d.create_file().unwrap();
        d.allocate(f, 32).unwrap();
        for b in 0..32u32 {
            d.write(f, b, BlockKind::Leaf, &[(b % 251) as u8; 128]).unwrap();
        }
        let write_ns = d.stats().device_ns();
        let d = &d;
        std::thread::scope(|s| {
            for t in 0..8u32 {
                s.spawn(move || {
                    let mut buf = vec![0u8; 128];
                    for round in 0..400u32 {
                        let b = (round.wrapping_mul(13) + t * 5) % 32;
                        d.read(f, b, BlockKind::Leaf, &mut buf).unwrap();
                        assert!(
                            buf.iter().all(|&x| x == (b % 251) as u8),
                            "torn read of block {b}"
                        );
                    }
                });
            }
        });
        let served = d.stats().reads() + d.stats().buffer_hits() + d.stats().reuse_hits();
        assert_eq!(served, 8 * 400, "every read must be accounted exactly once");
        assert_eq!(
            d.stats().device_ns() - write_ns,
            d.stats().reads(),
            "flat 1ns-per-read model: device time must equal the device read count"
        );
    }

    #[test]
    fn read_ref_is_zero_copy_on_pool_hits() {
        let d = Disk::in_memory(DiskConfig::with_block_size(128).buffer_blocks(8));
        let f = d.create_file().unwrap();
        d.allocate(f, 2).unwrap();
        d.write(f, 0, BlockKind::Leaf, &[9u8; 128]).unwrap();
        d.stats().reset();
        let first = d.read_ref(f, 0, BlockKind::Leaf).unwrap();
        let second = d.read_ref(f, 0, BlockKind::Leaf).unwrap();
        assert_eq!(&first[..], &[9u8; 128]);
        assert_eq!(&second[..], &[9u8; 128]);
        assert_eq!(d.stats().bytes_copied(), 0, "read_ref must never copy into caller buffers");
        assert_eq!(d.stats().frames_pinned(), 2, "every served read pins exactly one frame");
        // The write-through populated the pool, so both reads are hits.
        assert_eq!(d.stats().reuse_hits() + d.stats().buffer_hits(), 2);
        assert_eq!(d.stats().reads(), 0);
        // The legacy copying path is the one that pays (and records) copies.
        let mut buf = vec![0u8; 128];
        d.read(f, 0, BlockKind::Leaf, &mut buf).unwrap();
        assert_eq!(d.stats().bytes_copied(), 128);
    }

    #[test]
    fn pinned_frame_survives_eviction_free_and_overwrite() {
        // Pool of 4 blocks: read block 0, pin its frame, then evict it by
        // churning through many other blocks, free it and overwrite it. The
        // pinned frame must keep the original bytes throughout.
        let d = Disk::in_memory(DiskConfig::with_block_size(128).buffer_blocks(4));
        let f = d.create_file().unwrap();
        d.allocate(f, 16).unwrap();
        d.write(f, 0, BlockKind::Leaf, &[42u8; 128]).unwrap();
        let pinned = d.read_ref(f, 0, BlockKind::Leaf).unwrap();
        assert_eq!(&pinned[..], &[42u8; 128]);
        for b in 1..16u32 {
            d.read_ref(f, b, BlockKind::Leaf).unwrap();
        }
        d.free(f, 0, 1);
        d.write(f, 0, BlockKind::Leaf, &[7u8; 128]).unwrap();
        assert_eq!(&pinned[..], &[42u8; 128], "pinned snapshot must be immutable");
        // New readers observe the new contents.
        let fresh = d.read_ref(f, 0, BlockKind::Leaf).unwrap();
        assert_eq!(&fresh[..], &[7u8; 128]);
        // The pin is the only remaining owner of the old frame (clone-count
        // visibility for the lazy-free contract).
        assert_eq!(pinned.ref_count(), 1);
    }

    #[test]
    fn scan_readahead_charges_one_wave_per_extent() {
        // depth 4, random 100 / seq 5: an 8-block scan costs one random wave
        // (the demand miss, prefetching 3 more) plus one sequential wave
        // (the next demand miss at the readahead edge is sequential), i.e.
        // 100 + 5 instead of 100 + 7 * 5 sequential charges.
        let d = Disk::in_memory(
            DiskConfig::with_block_size(128)
                .device(DeviceModel::custom("t", 100, 1, 5))
                .queue_depth(4)
                .reuse_last_block(false),
        );
        let f = d.create_file().unwrap();
        d.allocate(f, 8).unwrap();
        for b in 0..8u32 {
            d.write(f, b, BlockKind::Leaf, &[(b + 1) as u8; 128]).unwrap();
        }
        d.stats().reset();
        d.reset_access_state();
        for b in 0..8u32 {
            let frame = d.read_ref_scan(f, b, BlockKind::Leaf).unwrap();
            assert!(frame.iter().all(|&x| x == (b + 1) as u8), "block {b}");
        }
        assert_eq!(d.stats().reads(), 8, "readahead never changes the fetched-block count");
        assert_eq!(d.stats().readahead_hits(), 6, "blocks 1-3 and 5-7 come from readahead");
        assert_eq!(d.stats().device_ns(), 100 + 5, "two waves: one random, one sequential");
        assert_eq!(d.stats().scan_reads(), 8);

        // Depth 1 on the same access pattern keeps today's per-block charges.
        let d1 = Disk::in_memory(
            DiskConfig::with_block_size(128)
                .device(DeviceModel::custom("t", 100, 1, 5))
                .reuse_last_block(false),
        );
        let f1 = d1.create_file().unwrap();
        d1.allocate(f1, 8).unwrap();
        for b in 0..8u32 {
            d1.write(f1, b, BlockKind::Leaf, &[0u8; 128]).unwrap();
        }
        d1.stats().reset();
        d1.reset_access_state();
        for b in 0..8u32 {
            d1.read_ref_scan(f1, b, BlockKind::Leaf).unwrap();
        }
        assert_eq!(d1.stats().device_ns(), 100 + 7 * 5);
        assert_eq!(d1.stats().readahead_hits(), 0);
    }

    #[test]
    fn freeing_and_overwriting_invalidate_parked_readahead_frames() {
        let d = Disk::in_memory(
            DiskConfig::with_block_size(128)
                .device(DeviceModel::custom("t", 100, 1, 5))
                .queue_depth(4)
                .reuse_last_block(false),
        );
        let f = d.create_file().unwrap();
        d.allocate(f, 8).unwrap();
        for b in 0..8u32 {
            d.write(f, b, BlockKind::Leaf, &[1u8; 128]).unwrap();
        }
        d.reset_access_state();
        // Park blocks 1..=3 via the scan readahead.
        d.read_ref_scan(f, 0, BlockKind::Leaf).unwrap();
        // Overwrite block 1: its parked frame must not be served.
        d.write(f, 1, BlockKind::Leaf, &[9u8; 128]).unwrap();
        let frame = d.read_ref_scan(f, 1, BlockKind::Leaf).unwrap();
        assert!(frame.iter().all(|&x| x == 9), "stale readahead frame served after overwrite");
        // Free blocks 2..=3: their parked frames must be dropped too. (A
        // point read avoids kicking off another readahead wave here, so the
        // fetch count moves by exactly one.)
        d.free(f, 2, 2);
        let before = d.stats().reads();
        d.read_ref(f, 2, BlockKind::Leaf).unwrap();
        assert_eq!(d.stats().reads(), before + 1, "freed block must be re-fetched");
    }

    #[test]
    fn sequential_hints_shield_concurrent_scans_from_each_other() {
        // Two threads each stream their own contiguous 64-block file. With
        // hint-carrying reads every fetch after a thread's first is charged
        // sequential regardless of how the threads interleave on the shared
        // last-access word. (Auto detection would let the interleaving turn
        // nearly every fetch into a random charge.)
        let d = Disk::in_memory(
            DiskConfig::with_block_size(128)
                .device(DeviceModel::custom("t", 1_000, 1, 7))
                .reuse_last_block(false),
        );
        let f0 = d.create_file().unwrap();
        let f1 = d.create_file().unwrap();
        for f in [f0, f1] {
            d.allocate(f, 64).unwrap();
            for b in 0..64u32 {
                d.write(f, b, BlockKind::Leaf, &[3u8; 128]).unwrap();
            }
        }
        d.stats().reset();
        d.reset_access_state();
        let d = &d;
        std::thread::scope(|s| {
            for f in [f0, f1] {
                s.spawn(move || {
                    for b in 0..64u32 {
                        let hint = if b == 0 { SeqHint::Random } else { SeqHint::Sequential };
                        d.read_ref_hinted(f, b, BlockKind::Leaf, AccessClass::Scan, hint).unwrap();
                    }
                });
            }
        });
        assert_eq!(d.stats().reads(), 128);
        assert_eq!(
            d.stats().device_ns(),
            2 * (1_000 + 63 * 7),
            "each scan pays one random seek plus 63 sequential charges, \
             independent of thread interleaving"
        );
    }

    #[test]
    fn simulated_latency_blocks_for_the_charged_time() {
        let d = Disk::in_memory(
            DiskConfig::with_block_size(128)
                .device(DeviceModel::custom("slow", 2_000_000, 0, 2_000_000))
                .simulate_latency(true)
                .reuse_last_block(false),
        );
        let f = d.create_file().unwrap();
        d.allocate(f, 1).unwrap();
        let mut buf = vec![0u8; 128];
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            d.read(f, 0, BlockKind::Leaf, &mut buf).unwrap();
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "5 reads at 2ms each must block for at least 10ms"
        );
        assert_eq!(d.stats().device_ns(), 5 * 2_000_000);
    }
}

#[cfg(test)]
mod scan_resistance_tests {
    use super::*;
    use crate::buffer::{PoolPartitions, ReplacementPolicy};

    /// The ISSUE's regression case: a full-table scan must not be able to
    /// evict an inner block living in the reserved partition, under *any*
    /// replacement policy.
    #[test]
    fn full_table_scan_cannot_evict_reserved_inner_blocks() {
        for policy in ReplacementPolicy::ALL {
            let d = Disk::in_memory(
                DiskConfig::with_block_size(128)
                    .buffer_blocks(16)
                    .buffer_policy(policy)
                    .buffer_partitions(PoolPartitions::InnerReserved { percent: 25 })
                    .reuse_last_block(false),
            );
            let f = d.create_file().unwrap();
            d.allocate(f, 512).unwrap();
            // Blocks 0..4 are the hot inner path; the rest is table data.
            for b in 0..4u32 {
                d.read_ref(f, b, BlockKind::Inner).unwrap();
            }
            let warm_reads = d.stats().reads();
            // A full-table scan streams every data block, tagged scan-class.
            for b in 4..512u32 {
                d.read_ref_scan(f, b, BlockKind::Leaf).unwrap();
            }
            assert_eq!(d.stats().scan_reads(), 508, "{policy}: scans must announce themselves");
            // Re-reading the inner path must be pure pool hits: the scan was
            // confined to the general partition.
            let before = d.stats().reads();
            for b in 0..4u32 {
                d.read_ref(f, b, BlockKind::Inner).unwrap();
            }
            assert_eq!(
                d.stats().reads(),
                before,
                "{policy}: a data scan must not evict reserved inner frames"
            );
            assert_eq!(warm_reads, 4, "{policy}: warm-up should have read each inner block once");
        }
    }

    /// Without partitions, the 2Q policy alone keeps a *promoted* hot set
    /// resident across a scan, while strict LRU loses it — the behavioural
    /// contrast the `scan_resistance` experiment quantifies.
    #[test]
    fn twoq_holds_hot_blocks_across_a_scan_where_lru_does_not() {
        let run = |policy: ReplacementPolicy| -> u64 {
            let d = Disk::in_memory(
                DiskConfig::with_block_size(128)
                    .buffer_blocks(8)
                    .buffer_policy(policy)
                    .reuse_last_block(false),
            );
            let f = d.create_file().unwrap();
            d.allocate(f, 256).unwrap();
            // Hot blocks 0..4, referenced twice (second touch promotes
            // under 2Q).
            for _ in 0..2 {
                for b in 0..4u32 {
                    d.read_ref(f, b, BlockKind::Leaf).unwrap();
                }
            }
            // Scan the table.
            for b in 4..256u32 {
                d.read_ref_scan(f, b, BlockKind::Leaf).unwrap();
            }
            // Count device reads needed to serve the hot set again.
            let before = d.stats().reads();
            for b in 0..4u32 {
                d.read_ref(f, b, BlockKind::Leaf).unwrap();
            }
            d.stats().reads() - before
        };
        assert_eq!(run(ReplacementPolicy::TwoQ), 0, "2Q must hold the promoted hot set");
        assert_eq!(run(ReplacementPolicy::Lru), 4, "strict LRU must have lost the hot set");
    }
}

#[cfg(test)]
mod memory_resident_tests {
    use super::*;

    #[test]
    fn memory_resident_kinds_are_not_charged() {
        let cfg = DiskConfig::with_block_size(128)
            .device(DeviceModel::custom("t", 100, 100, 100))
            .memory_resident(&[BlockKind::Inner, BlockKind::Meta]);
        let d = Disk::in_memory(cfg);
        let f = d.create_file().unwrap();
        d.allocate(f, 4).unwrap();
        let data = vec![7u8; 128];
        // Inner and meta I/O is free; leaf I/O is charged.
        d.write(f, 0, BlockKind::Inner, &data).unwrap();
        d.write(f, 1, BlockKind::Meta, &data).unwrap();
        d.write(f, 2, BlockKind::Leaf, &data).unwrap();
        let mut buf = vec![0u8; 128];
        d.read(f, 0, BlockKind::Inner, &mut buf).unwrap();
        assert_eq!(buf, data, "memory-resident reads still return real contents");
        d.read(f, 2, BlockKind::Leaf, &mut buf).unwrap();
        assert_eq!(d.stats().reads(), 1);
        assert_eq!(d.stats().writes(), 1);
        assert_eq!(d.stats().writes_of(BlockKind::Leaf), 1);
        assert_eq!(d.stats().device_ns(), 200);
    }
}

#[cfg(test)]
mod durable_tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lidx-disk-{tag}-{}", std::process::id()))
    }

    #[test]
    fn durable_disk_round_trips_through_restart() {
        let dir = tempdir("roundtrip");
        let meta = b"index manifest bytes".to_vec();
        {
            let d = Disk::create_durable(&dir, DiskConfig::with_block_size(256)).unwrap();
            let f = d.create_file().unwrap();
            d.allocate(f, 4).unwrap();
            let mut data = vec![0u8; 256];
            data[..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
            d.write(f, 2, BlockKind::Leaf, &data).unwrap();
            d.persist(&meta, true).unwrap();
        }
        let (d, sb) = Disk::open(&dir, DiskConfig::with_block_size(256)).unwrap();
        assert_eq!(sb.meta, meta);
        assert!(sb.clean_shutdown);
        assert_eq!(sb.file_blocks, vec![4]);
        assert_eq!(d.num_blocks(0).unwrap(), 4);
        let out = d.read_vec(0, 2, BlockKind::Leaf).unwrap();
        assert_eq!(&out[..4], &0xDEAD_BEEFu32.to_le_bytes());
        // Never-written blocks carry no stamp and read back as zeros.
        assert_eq!(d.read_vec(0, 3, BlockKind::Leaf).unwrap(), vec![0u8; 256]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_bumps_generation_and_newest_wins() {
        let dir = tempdir("generations");
        let d = Disk::create_durable(&dir, DiskConfig::with_block_size(128)).unwrap();
        let f = d.create_file().unwrap();
        d.allocate(f, 1).unwrap();
        d.persist(b"first", false).unwrap();
        d.persist(b"second", true).unwrap();
        drop(d);
        let (_d, sb) = Disk::open(&dir, DiskConfig::with_block_size(128)).unwrap();
        assert_eq!(sb.meta, b"second");
        assert_eq!(sb.generation, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_on_read_is_a_checksum_mismatch() {
        let dir = tempdir("bitflip");
        let plan = FaultPlan::new();
        let d = Disk::create_durable_with_faults(
            &dir,
            DiskConfig::with_block_size(128),
            Some(plan.clone()),
        )
        .unwrap();
        let f = d.create_file().unwrap();
        d.allocate(f, 1).unwrap();
        d.write(f, 0, BlockKind::Leaf, &[9u8; 128]).unwrap();
        d.clear_buffer();
        d.reset_access_state();
        plan.flip_read_bit(1, 5);
        let err = d.read_vec(f, 0, BlockKind::Leaf).unwrap_err();
        assert!(matches!(err, StorageError::ChecksumMismatch { file: 0, block: 0 }), "{err}");
        assert_eq!(d.stats().checksum_failures(), 1);
        // With the fault disarmed the block reads back intact.
        plan.clear();
        d.clear_buffer();
        d.reset_access_state();
        assert_eq!(d.read_vec(f, 0, BlockKind::Leaf).unwrap(), vec![9u8; 128]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_read_errors_are_retried_with_backoff() {
        let dir = tempdir("transient");
        let plan = FaultPlan::new();
        let d = Disk::create_durable_with_faults(
            &dir,
            DiskConfig::with_block_size(128),
            Some(plan.clone()),
        )
        .unwrap();
        let f = d.create_file().unwrap();
        d.allocate(f, 1).unwrap();
        d.write(f, 0, BlockKind::Leaf, &[3u8; 128]).unwrap();
        d.clear_buffer();
        d.reset_access_state();
        plan.transient_read_errors(2);
        assert_eq!(d.read_vec(f, 0, BlockKind::Leaf).unwrap(), vec![3u8; 128]);
        assert_eq!(d.stats().io_retries(), 2);
        assert_eq!(plan.transients_served(), 2);

        // More consecutive transients than the retry budget surface a typed
        // error instead of hanging or panicking.
        d.clear_buffer();
        d.reset_access_state();
        plan.transient_read_errors(64);
        let err = d.read_vec(f, 0, BlockKind::Leaf).unwrap_err();
        assert!(matches!(err, StorageError::Transient(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_invalidates_readahead_and_pool() {
        let dir = tempdir("invalidate");
        let cfg = DiskConfig::with_block_size(128).buffer_blocks(64);
        {
            let d = Disk::create_durable(&dir, cfg).unwrap();
            let f = d.create_file().unwrap();
            d.allocate(f, 8).unwrap();
            for b in 0..8 {
                d.write(f, b, BlockKind::Leaf, &[b as u8; 128]).unwrap();
            }
            d.persist(&[], true).unwrap();
        }
        // Mutate the files behind the disk's back between sessions, as a
        // recovery replay would: a reopened disk must not serve stale frames.
        {
            let d = Disk::create_durable(&dir, cfg).unwrap();
            drop(d); // create_durable wipes; rebuild the file fresh
        }
        let (d, _sb) = {
            let d = Disk::create_durable(&dir, cfg).unwrap();
            let f = d.create_file().unwrap();
            d.allocate(f, 8).unwrap();
            for b in 0..8 {
                d.write(f, b, BlockKind::Leaf, &[0xA0 | b as u8; 128]).unwrap();
            }
            d.persist(&[], true).unwrap();
            drop(d);
            Disk::open(&dir, cfg).unwrap()
        };
        for b in 0..8u32 {
            let got = d.read_vec(0, b, BlockKind::Leaf).unwrap();
            assert_eq!(got, vec![0xA0 | b as u8; 128], "block {b} must come from the device");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
