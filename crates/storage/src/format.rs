//! The durable on-disk format: CRC32, per-block stamps, and the superblock.
//!
//! Three pieces live here:
//!
//! * [`crc32`] — a table-driven CRC-32 (IEEE polynomial, the one ext4 and
//!   gzip use) with no external dependencies.
//! * [`BlockStamp`] — the `#[repr(C)]` per-block header (magic, write
//!   generation, CRC32 of the block contents). Stamps are stored *next to*
//!   the block — a sidecar table in [`MemoryBackend`](crate::MemoryBackend),
//!   a `file_{id}.sum` sidecar file in [`FileBackend`](crate::FileBackend) —
//!   rather than inline, so block capacity (and with it every per-block
//!   fanout/occupancy figure the experiments pin) is unchanged whether
//!   verification is on or off.
//! * [`Superblock`] — the double-buffered index root record. Two slots
//!   (`superblock.0` / `superblock.1`) are written alternately; each carries
//!   a format version, a monotonically increasing generation, the
//!   clean-shutdown flag, the per-file block counts (authoritative over the
//!   physical file sizes on reopen, which may include a torn trailing
//!   extend), and an opaque index metadata payload. A reader picks the slot
//!   with the highest generation that passes its CRC, so a crash that tears
//!   one slot falls back to the previous checkpoint.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::error::{StorageError, StorageResult};

/// CRC-32 (IEEE 802.3 polynomial, reflected). Table-driven, one byte per
/// step — plenty for block-sized inputs on the test path.
pub fn crc32(data: &[u8]) -> u32 {
    // Nibble-pair table generated at first use; `OnceLock` keeps this
    // allocation-free and thread-safe without a build script.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The per-block header: magic, write generation, and contents CRC.
///
/// `#[repr(C)]` fixes the field order; (de)serialisation is nevertheless
/// explicit little-endian via [`BlockStamp::encode`]/[`BlockStamp::decode`]
/// so the on-disk bytes do not depend on host endianness.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockStamp {
    /// Always [`BlockStamp::MAGIC`]; anything else means the stamp itself is
    /// torn or was never written.
    pub magic: u32,
    /// Monotonically increasing per-disk write counter at the time the block
    /// was last written. A reopened disk continues from the superblock's
    /// generation, so a stale pre-crash stamp can never alias a fresh one.
    pub generation: u32,
    /// CRC-32 of the full block contents.
    pub crc: u32,
}

impl BlockStamp {
    /// `"lblk"` little-endian.
    pub const MAGIC: u32 = 0x6B6C_626C;
    /// Encoded size in bytes.
    pub const BYTES: usize = 12;

    /// Encodes the stamp as 12 little-endian bytes.
    pub fn encode(&self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        out[0..4].copy_from_slice(&self.magic.to_le_bytes());
        out[4..8].copy_from_slice(&self.generation.to_le_bytes());
        out[8..12].copy_from_slice(&self.crc.to_le_bytes());
        out
    }

    /// Decodes a stamp. Returns `None` for an all-zero (never written)
    /// stamp; a garbled magic decodes to a stamp that will fail
    /// verification, never to a panic.
    pub fn decode(buf: &[u8; Self::BYTES]) -> Option<BlockStamp> {
        if buf.iter().all(|&b| b == 0) {
            return None;
        }
        Some(BlockStamp {
            magic: u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")),
            generation: u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
            crc: u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
        })
    }

    /// Verifies `data` against this stamp.
    pub fn verify(&self, file: u32, block: u32, data: &[u8]) -> StorageResult<()> {
        if self.magic != Self::MAGIC || crc32(data) != self.crc {
            return Err(StorageError::ChecksumMismatch { file, block });
        }
        Ok(())
    }
}

/// Version of the on-disk superblock layout.
pub const FORMAT_VERSION: u32 = 1;

const SUPERBLOCK_MAGIC: u32 = 0x7375_6C78; // "xlus" LE -> "slux"

/// The double-buffered index root record (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// On-disk layout version ([`FORMAT_VERSION`] for freshly written ones).
    pub format_version: u32,
    /// Monotonically increasing checkpoint number; the reader trusts the
    /// valid slot with the highest generation.
    pub generation: u64,
    /// Block-write generation counter at checkpoint time; reopened disks
    /// resume stamping from here.
    pub write_generation: u64,
    /// True only when written by a graceful close; a crash leaves the newest
    /// superblock with this flag false (or stale), telling the reopener that
    /// WAL replay is required.
    pub clean_shutdown: bool,
    /// Authoritative per-file allocated block counts at checkpoint time.
    pub file_blocks: Vec<u32>,
    /// Opaque index metadata (root pointers etc.) owned by the layers above.
    pub meta: Vec<u8>,
}

impl Superblock {
    /// Serialises the superblock, appending a trailing CRC over everything
    /// before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.file_blocks.len() * 4 + self.meta.len());
        out.extend_from_slice(&SUPERBLOCK_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.format_version.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.write_generation.to_le_bytes());
        out.push(self.clean_shutdown as u8);
        out.extend_from_slice(&(self.file_blocks.len() as u32).to_le_bytes());
        for &blocks in &self.file_blocks {
            out.extend_from_slice(&blocks.to_le_bytes());
        }
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.meta);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes one superblock slot. Any truncation, bad magic, unsupported
    /// version, or CRC mismatch is a typed error — never a panic.
    pub fn decode(buf: &[u8]) -> StorageResult<Superblock> {
        let corrupt = |msg: &str| StorageError::Corrupt(format!("superblock: {msg}"));
        if buf.len() < 33 + 4 {
            return Err(corrupt("short slot"));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(corrupt("bad CRC"));
        }
        let mut pos = 0usize;
        let mut take = |n: usize| -> StorageResult<&[u8]> {
            let s = body.get(pos..pos + n).ok_or_else(|| corrupt("truncated body"))?;
            pos += n;
            Ok(s)
        };
        let magic = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        if magic != SUPERBLOCK_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let format_version = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        if format_version != FORMAT_VERSION {
            return Err(corrupt("unsupported format version"));
        }
        let generation = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let write_generation = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let clean_shutdown = take(1)?[0] != 0;
        let n_files = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        if n_files > body.len() / 4 {
            return Err(corrupt("implausible file count"));
        }
        let mut file_blocks = Vec::with_capacity(n_files);
        for _ in 0..n_files {
            file_blocks.push(u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")));
        }
        let meta_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        let meta = take(meta_len)?.to_vec();
        Ok(Superblock {
            format_version,
            generation,
            write_generation,
            clean_shutdown,
            file_blocks,
            meta,
        })
    }

    /// Path of superblock slot `slot` (0 or 1) inside `dir`.
    pub fn slot_path(dir: &Path, slot: usize) -> PathBuf {
        dir.join(format!("superblock.{slot}"))
    }

    /// Writes this superblock into slot `generation % 2`, syncing the file.
    /// `tear_at` truncates the written bytes (fault injection: a crash in
    /// the middle of the slot write).
    pub fn write_slot(&self, dir: &Path, tear_at: Option<usize>) -> StorageResult<()> {
        let bytes = self.encode();
        let written: &[u8] = match tear_at {
            Some(k) => &bytes[..k.min(bytes.len())],
            None => &bytes,
        };
        let path = Self::slot_path(dir, (self.generation % 2) as usize);
        let mut f = fs::OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        f.write_all(written)?;
        f.sync_all()?;
        if tear_at.is_some() {
            return Err(StorageError::Io(std::io::Error::other(
                "superblock write torn by fault plan",
            )));
        }
        Ok(())
    }

    /// Reads both slots and returns the valid one with the highest
    /// generation, or `None` if neither slot holds a valid superblock.
    pub fn load_best(dir: &Path) -> StorageResult<Option<Superblock>> {
        let mut best: Option<Superblock> = None;
        for slot in 0..2 {
            let path = Self::slot_path(dir, slot);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            // A torn or corrupt slot is expected after a crash; the other
            // slot (the previous checkpoint) carries the recovery.
            if let Ok(sb) = Superblock::decode(&bytes) {
                if best.as_ref().is_none_or(|b| sb.generation > b.generation) {
                    best = Some(sb);
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn block_stamp_round_trips_and_verifies() {
        let data = vec![7u8; 512];
        let stamp = BlockStamp { magic: BlockStamp::MAGIC, generation: 42, crc: crc32(&data) };
        let decoded = BlockStamp::decode(&stamp.encode()).expect("non-zero stamp");
        assert_eq!(decoded, stamp);
        decoded.verify(0, 0, &data).unwrap();
        let mut bad = data.clone();
        bad[100] ^= 1;
        assert!(matches!(
            decoded.verify(1, 9, &bad),
            Err(StorageError::ChecksumMismatch { file: 1, block: 9 })
        ));
        assert_eq!(BlockStamp::decode(&[0u8; BlockStamp::BYTES]), None);
    }

    #[test]
    fn superblock_round_trips() {
        let sb = Superblock {
            format_version: FORMAT_VERSION,
            generation: 7,
            write_generation: 1234,
            clean_shutdown: true,
            file_blocks: vec![10, 0, 33],
            meta: b"hello meta".to_vec(),
        };
        let got = Superblock::decode(&sb.encode()).unwrap();
        assert_eq!(got, sb);
    }

    #[test]
    fn superblock_rejects_corruption_with_typed_errors() {
        let sb = Superblock {
            format_version: FORMAT_VERSION,
            generation: 3,
            write_generation: 9,
            clean_shutdown: false,
            file_blocks: vec![1, 2],
            meta: vec![5; 100],
        };
        let bytes = sb.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Superblock::decode(&bad).is_err(), "flipped byte {i} must not decode");
        }
        for cut in 0..bytes.len() {
            assert!(Superblock::decode(&bytes[..cut]).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn two_slot_files_survive_a_torn_newest_slot() {
        let dir = std::env::temp_dir().join(format!(
            "lidx-format-test-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut sb = Superblock {
            format_version: FORMAT_VERSION,
            generation: 1,
            write_generation: 10,
            clean_shutdown: false,
            file_blocks: vec![4],
            meta: b"gen1".to_vec(),
        };
        sb.write_slot(&dir, None).unwrap();
        sb.generation = 2;
        sb.meta = b"gen2".to_vec();
        sb.write_slot(&dir, None).unwrap();
        assert_eq!(Superblock::load_best(&dir).unwrap().unwrap().meta, b"gen2");

        // Tear the next checkpoint (slot 1 again after gen 3 -> slot 1);
        // load_best must fall back to generation 2.
        sb.generation = 3;
        sb.meta = b"gen3".to_vec();
        assert!(sb.write_slot(&dir, Some(9)).is_err());
        let best = Superblock::load_best(&dir).unwrap().unwrap();
        assert_eq!(best.generation, 2);
        assert_eq!(best.meta, b"gen2");
        std::fs::remove_dir_all(&dir).ok();
    }
}
