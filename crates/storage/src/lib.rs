//! Block-granular storage substrate for disk-resident index structures.
//!
//! This crate provides everything the on-disk indexes in this workspace need
//! from a storage engine:
//!
//! * [`backend::StorageBackend`] — the raw block device abstraction, with an
//!   in-memory implementation ([`backend::MemoryBackend`]) used by the
//!   evaluation harness and a real-file implementation
//!   ([`backend::FileBackend`]) used for functional verification.
//! * [`device::DeviceModel`] — the HDD / SSD cost models that convert block
//!   accesses into simulated latency, replacing the paper's physical disks.
//! * [`stats::IoStats`] — per-index I/O accounting (reads / writes, split by
//!   [`BlockKind`]) that drives every fetched-block table in the paper.
//! * [`buffer::BufferPool`] / [`buffer::ShardedBufferPool`] — a block cache
//!   with pluggable replacement ([`buffer::ReplacementPolicy`]: strict LRU
//!   for the paper's buffer-size study, Fig. 13, plus CLOCK and a
//!   scan-resistant 2Q variant), optional per-kind frame partitions
//!   ([`buffer::PoolPartitions`]) and scan-aware admission
//!   ([`buffer::AccessClass`]); the lock-striped variant is embedded in
//!   [`Disk`] so concurrent readers do not serialise on a single pool mutex.
//! * [`pager::Pager`] — extent allocation on top of a file, required by ALEX
//!   and LIPP whose variable-sized nodes may span several contiguous blocks.
//! * [`queue::ReadQueue`] — the outstanding-read engine: an io_uring-shaped
//!   submission/completion queue that overlaps a wave of fetches (the device
//!   is charged the max, not the sum, of the wave's costs) and powers the
//!   scan readahead; at queue depth 1 it degenerates to the synchronous
//!   path.
//! * [`Disk`] — the façade combining all of the above, which is what index
//!   crates actually talk to.
//! * [`mod@format`] — the crash-safe on-disk format: CRC32 block stamps
//!   ([`format::BlockStamp`]) verified on every read of a durable disk, and
//!   the double-buffered, checksummed [`format::Superblock`] that anchors a
//!   directory across restarts.
//! * [`wal::WalSegment`] — an append-only, checksummed, length-prefixed log
//!   over a utility file; write buffers log staged entries here so a crash
//!   mid-drain replays cleanly on reopen.
//! * [`fault::FaultPlan`] / [`fault::FaultingBackend`] — deterministic fault
//!   injection (failed writes, torn writes, read bit-flips, transient EIO)
//!   wrapped around any backend, powering the kill-and-recover test suites.
//!
//! The read path is zero-copy: [`Disk::read_ref`] hands out pinned
//! [`buffer::BlockRef`] frames (`Arc`-backed, read-only) instead of copying
//! into caller buffers, so a buffer-pool or reuse hit costs one atomic
//! increment — no allocation, no memcpy. Eviction drops the pool's reference
//! only; a caller holding a frame keeps its snapshot alive (lazy free). The
//! whole layer is safe for N concurrent reader threads over a frozen index:
//! statistics are atomic counters, the pool is lock-striped, backends
//! synchronise internally behind a reader/writer lock, and the single-slot
//! last-block-reuse cache degrades gracefully under contention (`try_lock`,
//! never blocking a reader).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod buffer;
pub mod codec;
pub mod device;
pub mod disk;
pub mod error;
pub mod fault;
pub mod format;
pub mod pager;
pub mod queue;
pub mod stats;
pub mod wal;

pub use backend::{FileBackend, MemoryBackend, StorageBackend};
pub use buffer::{
    AccessClass, BlockRef, BufferPool, PoolConfig, PoolPartitions, ReplacementPolicy,
    ShardedBufferPool,
};
pub use codec::{BlockReader, BlockWriter};
pub use device::DeviceModel;
pub use disk::{Disk, DiskConfig, FileId, SeqHint};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultPlan, FaultingBackend};
pub use format::{crc32, BlockStamp, Superblock, FORMAT_VERSION};
pub use pager::Pager;
pub use queue::{Completion, ReadQueue};
pub use stats::{BlockKind, IoStats, OpStats};
pub use wal::WalSegment;
// Telemetry is a leaf crate the storage layer hosts (the registry hangs off
// [`Disk`]); re-export it so the layers above reach the types through their
// existing `lidx-storage` dependency edge.
pub use lidx_telemetry as telemetry;
pub use lidx_telemetry::{
    ClassStats, Histogram, OpClass, Span, TailSummary, TelemetryRegistry, TelemetrySnapshot,
};

/// Identifier of a block within one file, starting at zero.
pub type BlockId = u32;

/// The default block size used throughout the evaluation (the paper fixes
/// 4 KB except for the block-size study of §6.4).
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// A sentinel block id meaning "no block" (e.g. absent sibling pointers).
pub const INVALID_BLOCK: BlockId = u32::MAX;
