//! Write-ahead log segments layered on a [`Disk`] utility file.
//!
//! A [`WalSegment`] turns one file of a [`Disk`] into an append-only log of
//! checksummed, length-prefixed records. Block 0 holds a small header
//! (`magic`, format version, `epoch`); records start at block 1 and form a
//! contiguous byte stream that spans block boundaries freely. Each record is
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [epoch: u64 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is a CRC32 over `len || epoch || payload`. Replay walks the
//! stream from block 1 and stops cleanly at the first record whose length is
//! zero (never written), whose epoch does not match the header (leftover from
//! a previous, truncated incarnation of the log), whose CRC fails, or whose
//! containing block fails the [`BlockStamp`](crate::format::BlockStamp)
//! verification (a torn tail write). Everything before that point is a valid
//! prefix of what the writer appended.
//!
//! Appends use *group commit*: bytes accumulate in an in-memory tail block
//! that is written out only when it fills, at explicit [`WalSegment::sync`]
//! points, or on [`WalSegment::truncate`]. This keeps the WAL's write
//! amplification on the staging path far below one device write per logged
//! entry while still bounding the window of unsynced data to a single block.
//!
//! [`WalSegment::truncate`] retires all records by bumping the epoch and
//! rewriting the header; old blocks are reused in place, invalidated by the
//! epoch check rather than by zeroing.

use std::sync::Arc;

use crate::disk::Disk;
use crate::error::{StorageError, StorageResult};
use crate::format::crc32;
use crate::stats::BlockKind;
use crate::{BlockId, FileId};

/// Magic tag stored in the first four bytes of a WAL header block.
pub const WAL_MAGIC: u32 = 0x6C61_776C; // "lwal" in LE byte order.

/// Bytes of framing in front of every record payload.
pub const WAL_RECORD_HEADER: usize = 16;

/// Blocks allocated at a time when the log grows.
const WAL_EXTENT: u32 = 8;

/// An append-only, checksummed log over one utility file of a [`Disk`].
///
/// All device traffic (header writes, tail flushes, replay reads) goes
/// through the owning disk as [`BlockKind::Utility`] accesses, so the WAL's
/// I/O cost shows up in [`IoStats`](crate::stats::IoStats) like any other
/// structure's.
pub struct WalSegment {
    disk: Arc<Disk>,
    file: FileId,
    epoch: u64,
    /// Blocks currently allocated in `file` (grown in `WAL_EXTENT` steps).
    allocated: u32,
    /// Block the in-memory tail buffer will be written to.
    tail_block: BlockId,
    /// Partially filled tail block (always `block_size` long).
    tail: Vec<u8>,
    /// Valid bytes at the front of `tail`.
    tail_len: usize,
    /// Whether `tail` holds bytes not yet written to the device.
    dirty: bool,
}

impl WalSegment {
    /// Creates a fresh log in a newly created file of `disk` at epoch 1.
    pub fn create(disk: &Arc<Disk>) -> StorageResult<Self> {
        let file = disk.create_file()?;
        let mut wal = WalSegment {
            disk: Arc::clone(disk),
            file,
            epoch: 1,
            allocated: 0,
            tail_block: 1,
            tail: vec![0u8; disk.block_size()],
            tail_len: 0,
            dirty: false,
        };
        wal.ensure_allocated(0)?;
        wal.write_header()?;
        Ok(wal)
    }

    /// Reopens the log stored in `file` of `disk` and replays it, returning
    /// the segment (positioned to append after the valid prefix) and the
    /// payloads of every intact record, in append order.
    ///
    /// A header that fails its block checksum or carries the wrong magic is
    /// treated as the aftermath of a crash inside [`truncate`](Self::truncate)
    /// (the only time the header is rewritten after creation): the log's
    /// contents are already captured by the checkpoint that preceded the
    /// truncate, so the segment is reset to empty rather than failing the
    /// open. Replayed-entry counts are recorded in the disk's
    /// [`IoStats`](crate::stats::IoStats).
    pub fn open(disk: &Arc<Disk>, file: FileId) -> StorageResult<(Self, Vec<Vec<u8>>)> {
        let bs = disk.block_size();
        // The superblock's count for this file is the allocation at the
        // *last checkpoint*; the log legitimately grew past it between
        // checkpoints and those synced records must replay. Adopt the
        // physical size — every adopted block is validated by stamp, epoch
        // and record CRC before any byte of it is trusted.
        let allocated = disk.adopt_physical_size(file)?;
        let mut wal = WalSegment {
            disk: Arc::clone(disk),
            file,
            epoch: 1,
            allocated,
            tail_block: 1,
            tail: vec![0u8; bs],
            tail_len: 0,
            dirty: false,
        };
        if allocated == 0 {
            wal.ensure_allocated(0)?;
            wal.write_header()?;
            return Ok((wal, Vec::new()));
        }
        let epoch = match wal.read_header() {
            Ok(epoch) => epoch,
            Err(StorageError::ChecksumMismatch { .. }) | Err(StorageError::Corrupt(_)) => {
                // Torn mid-truncate: the preceding checkpoint already owns
                // this log's contents. Old record blocks may carry unknown
                // epochs, so zero them before reusing the file.
                wal.reset_after_torn_header()?;
                return Ok((wal, Vec::new()));
            }
            Err(e) => return Err(e),
        };
        wal.epoch = epoch;
        let (payloads, pos) = wal.scan_records()?;
        // Position the tail over the byte right after the valid prefix so
        // new appends continue the stream (replay stays idempotent if the
        // process dies again before the next checkpoint truncates).
        wal.tail_block = 1 + (pos / bs) as u32;
        wal.tail_len = pos % bs;
        if wal.tail_len > 0 {
            let buf = wal.disk.read_vec(file, wal.tail_block, BlockKind::Utility)?;
            wal.tail[..wal.tail_len].copy_from_slice(&buf[..wal.tail_len]);
            wal.tail[wal.tail_len..].fill(0);
        }
        wal.disk.stats().record_replayed_entries(payloads.len() as u64);
        Ok((wal, payloads))
    }

    /// File id the log lives in (persist it to reopen the log later).
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Current epoch of the log.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Appends one record. The record is framed, checksummed, and buffered;
    /// it reaches the device when the tail block fills or at the next
    /// [`sync`](Self::sync). Returns the number of log bytes appended.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<usize> {
        let record = encode_record(self.epoch, payload);
        let mut off = 0;
        while off < record.len() {
            let bs = self.tail.len();
            let n = (bs - self.tail_len).min(record.len() - off);
            self.tail[self.tail_len..self.tail_len + n].copy_from_slice(&record[off..off + n]);
            self.tail_len += n;
            off += n;
            if self.tail_len == bs {
                self.flush_tail(true)?;
            }
        }
        self.dirty = true;
        self.disk.stats().record_wal_append(record.len() as u64);
        Ok(record.len())
    }

    /// Forces every buffered byte to the device. After a successful sync all
    /// previously appended records survive a crash (up to torn-write faults,
    /// which replay detects and trims).
    pub fn sync(&mut self) -> StorageResult<()> {
        if self.dirty {
            // A group-commit boundary: everything staged since the last sync
            // is forced out here, so this span is the WAL-sync pause a
            // writer's tail latency sees. (Clone the Arc: the span must not
            // hold a borrow of `self` across the mutable flush.)
            let disk = Arc::clone(&self.disk);
            let _span = disk.telemetry().span(lidx_telemetry::OpClass::WalSync);
            if self.tail_len > 0 {
                self.flush_tail(false)?;
            }
            self.dirty = false;
            disk.stats().record_wal_sync();
        }
        Ok(())
    }

    /// Retires every record by bumping the epoch and rewriting the header.
    /// Old blocks are reused in place; the epoch check invalidates their
    /// contents during replay. Call only once the logged state is owned by a
    /// durable checkpoint.
    pub fn truncate(&mut self) -> StorageResult<()> {
        self.epoch += 1;
        self.write_header()?;
        self.tail_block = 1;
        self.tail.fill(0);
        self.tail_len = 0;
        self.dirty = false;
        Ok(())
    }

    fn write_header(&mut self) -> StorageResult<()> {
        let mut buf = vec![0u8; self.tail.len()];
        buf[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&crate::format::FORMAT_VERSION.to_le_bytes());
        buf[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        self.ensure_allocated(0)?;
        self.disk.write(self.file, 0, BlockKind::Utility, &buf)
    }

    fn read_header(&self) -> StorageResult<u64> {
        let buf = self.disk.read_vec(self.file, 0, BlockKind::Utility)?;
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if magic != WAL_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "WAL header of file {} has magic {magic:#x}, expected {WAL_MAGIC:#x}",
                self.file
            )));
        }
        Ok(u64::from_le_bytes(buf[8..16].try_into().unwrap()))
    }

    /// Zeroes every record block and restarts the log at epoch 1. Used when
    /// the header itself is unreadable: old records carry unknown epochs, so
    /// the epoch guard alone cannot invalidate them.
    fn reset_after_torn_header(&mut self) -> StorageResult<()> {
        let zeros = vec![0u8; self.tail.len()];
        for block in 1..self.allocated {
            self.disk.write(self.file, block, BlockKind::Utility, &zeros)?;
        }
        self.epoch = 1;
        self.tail_block = 1;
        self.tail.fill(0);
        self.tail_len = 0;
        self.dirty = false;
        self.write_header()
    }

    /// Reads the whole record region, stopping early at a torn block, and
    /// decodes the valid record prefix. Returns the payloads plus the byte
    /// offset (from the start of block 1) where appends should resume.
    fn scan_records(&self) -> StorageResult<(Vec<Vec<u8>>, usize)> {
        let bs = self.tail.len();
        let mut region = Vec::with_capacity((self.allocated.saturating_sub(1)) as usize * bs);
        for block in 1..self.allocated {
            match self.disk.read_vec(self.file, block, BlockKind::Utility) {
                Ok(buf) => region.extend_from_slice(&buf),
                // A torn tail flush: the stamp is stale, the block contents
                // are partial. Everything decoded so far is still a valid
                // prefix; stop reading here.
                Err(StorageError::ChecksumMismatch { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        let mut payloads = Vec::new();
        let mut pos = 0usize;
        loop {
            match decode_record(&region[pos..], self.epoch, self.file, 1 + (pos / bs) as u32) {
                Ok(Some((payload, consumed))) => {
                    payloads.push(payload);
                    pos += consumed;
                }
                // Clean end of log (zero length, old epoch, or short data).
                Ok(None) => break,
                // Torn or bit-flipped record: trim the log here.
                Err(StorageError::ChecksumMismatch { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        Ok((payloads, pos))
    }

    fn flush_tail(&mut self, advance: bool) -> StorageResult<()> {
        self.ensure_allocated(self.tail_block)?;
        self.disk.write(self.file, self.tail_block, BlockKind::Utility, &self.tail)?;
        if advance {
            self.tail_block += 1;
            self.tail.fill(0);
            self.tail_len = 0;
        }
        Ok(())
    }

    fn ensure_allocated(&mut self, block: BlockId) -> StorageResult<()> {
        while block >= self.allocated {
            let start = self.disk.allocate(self.file, WAL_EXTENT)?;
            self.allocated = self.allocated.max(start + WAL_EXTENT);
        }
        Ok(())
    }
}

impl std::fmt::Debug for WalSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalSegment")
            .field("file", &self.file)
            .field("epoch", &self.epoch)
            .field("tail_block", &self.tail_block)
            .field("tail_len", &self.tail_len)
            .finish()
    }
}

/// Frames `payload` as one WAL record at `epoch`.
pub fn encode_record(epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(WAL_RECORD_HEADER + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&[0u8; 4]); // CRC placeholder.
    record.extend_from_slice(&epoch.to_le_bytes());
    record.extend_from_slice(payload);
    let crc = record_crc(&record);
    record[4..8].copy_from_slice(&crc.to_le_bytes());
    record
}

/// CRC32 over `len || epoch || payload` — everything except the CRC field.
fn record_crc(record: &[u8]) -> u32 {
    let mut hashed = Vec::with_capacity(record.len() - 4);
    hashed.extend_from_slice(&record[0..4]);
    hashed.extend_from_slice(&record[8..]);
    crc32(&hashed)
}

/// Decodes the record at the front of `buf`.
///
/// Returns `Ok(Some((payload, consumed_bytes)))` for an intact record at the
/// expected `epoch`, `Ok(None)` for a clean end of log (fewer than
/// [`WAL_RECORD_HEADER`] bytes left, a zero length field, a stale epoch, or
/// a length running past the buffer — all states a crash can legitimately
/// leave behind), and `Err(ChecksumMismatch)` when the framing is intact but
/// the CRC fails: the record was torn or corrupted and the log must be
/// trimmed at this point. `file` and `block` only label the error. Never
/// panics, whatever the bytes.
pub fn decode_record(
    buf: &[u8],
    epoch: u64,
    file: FileId,
    block: BlockId,
) -> StorageResult<Option<(Vec<u8>, usize)>> {
    if buf.len() < WAL_RECORD_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let rec_epoch = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    if len == 0 || rec_epoch != epoch {
        return Ok(None);
    }
    let total = WAL_RECORD_HEADER + len;
    if total > buf.len() {
        return Ok(None);
    }
    if record_crc(&buf[..total]) != crc {
        return Err(StorageError::ChecksumMismatch { file, block });
    }
    Ok(Some((buf[WAL_RECORD_HEADER..total].to_vec(), total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, DiskConfig};
    use crate::fault::FaultPlan;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lidx-wal-{tag}-{}", std::process::id()))
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("record-{i}-{}", "x".repeat(i * 7 % 60)).into_bytes()).collect()
    }

    #[test]
    fn append_sync_reopen_round_trips() {
        let dir = tempdir("roundtrip");
        let want = payloads(40);
        let file;
        {
            let disk = Disk::create_durable(&dir, DiskConfig::default()).unwrap();
            let mut wal = WalSegment::create(&disk).unwrap();
            file = wal.file();
            for p in &want {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
            assert!(disk.stats().wal_appends() >= want.len() as u64);
            assert!(disk.stats().wal_bytes() > 0);
            disk.persist(&[], false).unwrap();
        }
        let (disk, _sb) = Disk::open(&dir, DiskConfig::default()).unwrap();
        let (mut wal, got) = WalSegment::open(&disk, file).unwrap();
        assert_eq!(got, want);
        assert_eq!(disk.stats().replayed_entries(), want.len() as u64);

        // The reopened segment keeps appending after the valid prefix.
        wal.append(b"after-reopen").unwrap();
        wal.sync().unwrap();
        disk.persist(&[], false).unwrap();
        drop(wal);
        let (disk, _sb) = Disk::open(&dir, DiskConfig::default()).unwrap();
        let (_wal, got) = WalSegment::open(&disk, file).unwrap();
        assert_eq!(got.len(), want.len() + 1);
        assert_eq!(got.last().unwrap(), b"after-reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_retires_records_via_epoch() {
        let dir = tempdir("truncate");
        let disk = Disk::create_durable(&dir, DiskConfig::default()).unwrap();
        let mut wal = WalSegment::create(&disk).unwrap();
        let file = wal.file();
        wal.append(b"old-1").unwrap();
        wal.append(b"old-2").unwrap();
        wal.sync().unwrap();
        wal.truncate().unwrap();
        wal.append(b"new-1").unwrap();
        wal.sync().unwrap();
        disk.persist(&[], false).unwrap();
        drop(wal);
        drop(disk);

        let (disk, _sb) = Disk::open(&dir, DiskConfig::default()).unwrap();
        let (_wal, got) = WalSegment::open(&disk, file).unwrap();
        assert_eq!(got, vec![b"new-1".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_write_trims_to_valid_prefix() {
        let dir = tempdir("torn-tail");
        let plan = FaultPlan::new();
        let disk =
            Disk::create_durable_with_faults(&dir, DiskConfig::default(), Some(plan.clone()))
                .unwrap();
        let mut wal = WalSegment::create(&disk).unwrap();
        let file = wal.file();
        wal.append(b"survives").unwrap();
        wal.sync().unwrap();
        disk.persist(&[], false).unwrap();

        wal.append(b"torn-away").unwrap();
        plan.tear_nth_write(1, 3);
        assert!(wal.sync().is_err());
        plan.clear();
        drop(wal);
        drop(disk);

        let (disk, _sb) =
            Disk::open_with_faults(&dir, DiskConfig::default(), Some(FaultPlan::new())).unwrap();
        let (_wal, got) = WalSegment::open(&disk, file).unwrap();
        assert_eq!(got, vec![b"survives".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_sees_records_past_the_checkpoint_time_allocation() {
        // Regression: the superblock's per-file counts are authoritative on
        // reopen, but the WAL grows *between* checkpoints — synced records
        // in post-checkpoint extents must replay. Persist the superblock
        // while the log is small, then append far past the recorded
        // allocation before the kill.
        let dir = tempdir("grown-tail");
        let disk = Disk::create_durable(&dir, DiskConfig::with_block_size(256)).unwrap();
        let mut wal = WalSegment::create(&disk).unwrap();
        let file = wal.file();
        disk.persist(b"checkpoint-before-growth", false).unwrap();
        let recorded = disk.num_blocks(file).unwrap();
        // Each record is 16 + 100 bytes; push well past the recorded extent.
        let want: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i; 100]).collect();
        for p in &want {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        assert!(
            disk.num_blocks(file).unwrap() > recorded,
            "the log must have outgrown its checkpointed allocation"
        );
        drop(wal);
        drop(disk);

        let (disk, _sb) = Disk::open(&dir, DiskConfig::with_block_size(256)).unwrap();
        let (_wal, got) = WalSegment::open(&disk, file).unwrap();
        assert_eq!(got, want, "every synced record replays, including the grown tail");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn records_span_block_boundaries() {
        let dir = tempdir("spanning");
        let config = DiskConfig::default();
        let disk = Disk::create_durable(&dir, config).unwrap();
        let bs = disk.block_size();
        let mut wal = WalSegment::create(&disk).unwrap();
        let file = wal.file();
        // Each record covers multiple blocks; several block-fill flushes
        // happen inside a single append.
        let want: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; bs * 2 + 37 * i as usize]).collect();
        for p in &want {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        disk.persist(&[], false).unwrap();
        drop(wal);
        drop(disk);
        let (disk, _sb) = Disk::open(&dir, config).unwrap();
        let (_wal, got) = WalSegment::open(&disk, file).unwrap();
        assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_record_flags_corruption_without_panicking() {
        let record = encode_record(7, b"payload-bytes");
        let (payload, consumed) = decode_record(&record, 7, 0, 1).unwrap().unwrap();
        assert_eq!(payload, b"payload-bytes");
        assert_eq!(consumed, record.len());

        // Stale epoch and zero length are clean end-of-log states.
        assert!(decode_record(&record, 8, 0, 1).unwrap().is_none());
        assert!(decode_record(&[0u8; 64], 7, 0, 1).unwrap().is_none());

        // A payload flip is a hard checksum error.
        let mut torn = record.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x40;
        assert!(matches!(
            decode_record(&torn, 7, 0, 1),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }
}
