//! Corruption property tests: no sequence of flipped bits, torn writes or
//! truncated buffers may ever panic the storage layer or let corrupt bytes
//! decode as valid data. Every corruption is either a typed
//! [`StorageError::ChecksumMismatch`] or an honest end-of-log.

use lidx_storage::wal::{decode_record, encode_record, WAL_RECORD_HEADER};
use lidx_storage::{
    crc32, BlockKind, BlockStamp, Disk, DiskConfig, FaultPlan, FaultingBackend, MemoryBackend,
    StorageBackend, StorageError, Superblock, FORMAT_VERSION,
};
use proptest::prelude::*;

/// An in-memory disk with checksums on and a fault plan wired in — the same
/// verify path the durable file-backed stack uses, without touching the
/// filesystem from inside a property loop.
fn faulted_disk(block_size: usize, plan: &FaultPlan) -> std::sync::Arc<Disk> {
    let mut config = DiskConfig::with_block_size(block_size);
    config.verify_checksums = true;
    let backend: Box<dyn StorageBackend> =
        Box::new(FaultingBackend::new(Box::new(MemoryBackend::new(block_size)), plan.clone()));
    Disk::with_backend(backend, config)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Flipping any byte of a stamped block's contents must fail
    /// verification with `ChecksumMismatch` — never pass, never panic.
    #[test]
    fn any_flipped_data_byte_fails_stamp_verification(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        index in any::<u64>(),
        mask in 1u16..256,
    ) {
        let stamp = BlockStamp {
            magic: BlockStamp::MAGIC,
            generation: 7,
            crc: crc32(&data),
        };
        stamp.verify(0, 0, &data).expect("intact data verifies");
        let mut bad = data.clone();
        let i = (index as usize) % bad.len();
        bad[i] ^= mask as u8;
        prop_assert!(
            matches!(stamp.verify(3, 9, &bad),
                     Err(StorageError::ChecksumMismatch { file: 3, block: 9 })),
            "flipping byte {i} with mask {mask:#04x} must be a checksum mismatch"
        );
    }

    /// End-to-end through the disk: a bit flipped anywhere in a block read
    /// back from the backend surfaces as `ChecksumMismatch` (and a counted
    /// checksum failure), never as silently wrong data and never as a panic.
    #[test]
    fn any_flipped_read_bit_is_a_checksum_mismatch(
        fill in any::<u8>(),
        bit in 0u32..(128 * 8),
    ) {
        let plan = FaultPlan::new();
        let disk = faulted_disk(128, &plan);
        let file = disk.create_file().expect("create file");
        disk.allocate(file, 1).expect("allocate");
        disk.write(file, 0, BlockKind::Leaf, &[fill; 128]).expect("write");
        disk.clear_buffer();
        disk.reset_access_state();
        plan.flip_read_bit(1, bit);
        let err = disk.read_vec(file, 0, BlockKind::Leaf).expect_err("flip must surface");
        prop_assert!(
            matches!(err, StorageError::ChecksumMismatch { .. }),
            "bit {bit}: expected ChecksumMismatch, got {err}"
        );
        prop_assert_eq!(disk.stats().checksum_failures(), 1);
        // Once the one-shot fault is spent the block reads back intact.
        disk.clear_buffer();
        disk.reset_access_state();
        prop_assert_eq!(disk.read_vec(file, 0, BlockKind::Leaf).expect("clean read"),
                        vec![fill; 128]);
    }

    /// Flipping any byte of an encoded WAL record must never decode as a
    /// record: every flip lands as either a hard `ChecksumMismatch` (trim
    /// the log here) or a clean end-of-log (`Ok(None)`), and never panics.
    #[test]
    fn any_flipped_wal_record_byte_never_decodes(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        epoch in 1u64..1000,
        index in any::<u64>(),
        mask in 1u16..256,
    ) {
        let record = encode_record(epoch, &payload);
        let (got, consumed) = decode_record(&record, epoch, 0, 1)
            .expect("intact record decodes")
            .expect("intact record is Some");
        prop_assert_eq!(&got, &payload);
        prop_assert_eq!(consumed, record.len());

        let mut bad = record.clone();
        let i = (index as usize) % bad.len();
        bad[i] ^= mask as u8;
        match decode_record(&bad, epoch, 0, 1) {
            Ok(None) | Err(StorageError::ChecksumMismatch { .. }) => {}
            Ok(Some(_)) => prop_assert!(
                false,
                "flipping byte {} with mask {:#04x} decoded as a valid record",
                i, mask
            ),
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
        }
    }

    /// Truncating an encoded WAL record at any point (a torn tail write)
    /// must read as a clean end-of-log or a checksum trim — never a decoded
    /// record, never a panic.
    #[test]
    fn any_truncated_wal_record_never_decodes(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        epoch in 1u64..1000,
        cut in any::<u64>(),
    ) {
        let record = encode_record(epoch, &payload);
        let cut = (cut as usize) % record.len(); // strictly shorter than the record
        match decode_record(&record[..cut], epoch, 0, 1) {
            Ok(None) | Err(StorageError::ChecksumMismatch { .. }) => {}
            Ok(Some(_)) => prop_assert!(false, "cut at {} decoded as a valid record", cut),
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
        }
    }

    /// Flipping any byte of an encoded superblock slot must fail decoding
    /// with a typed error — the double-buffered reopen protocol depends on a
    /// torn slot never being mistaken for a checkpoint.
    #[test]
    fn any_flipped_superblock_byte_fails_decode(
        meta in proptest::collection::vec(any::<u8>(), 0..120),
        generation in 1u64..100,
        index in any::<u64>(),
        mask in 1u16..256,
    ) {
        let sb = Superblock {
            format_version: FORMAT_VERSION,
            generation,
            write_generation: generation * 17,
            clean_shutdown: generation % 2 == 0,
            file_blocks: vec![4, 0, 9],
            meta,
        };
        let bytes = sb.encode();
        prop_assert_eq!(Superblock::decode(&bytes).expect("intact slot decodes"), sb);
        let mut bad = bytes.clone();
        let i = (index as usize) % bad.len();
        bad[i] ^= mask as u8;
        prop_assert!(
            Superblock::decode(&bad).is_err(),
            "flipping superblock byte {} with mask {:#04x} must not decode",
            i, mask
        );
    }

    /// A WAL record whose corrupted length field wanders anywhere inside the
    /// buffer must still never yield a payload that differs from an honest
    /// record: exhaustively rewrite the length field to arbitrary values.
    #[test]
    fn rewritten_wal_length_field_never_decodes(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        epoch in 1u64..100,
        fake_len in any::<u32>(),
    ) {
        let mut record = encode_record(epoch, &payload);
        if fake_len as usize != payload.len() {
            record[0..4].copy_from_slice(&fake_len.to_le_bytes());
            match decode_record(&record, epoch, 0, 1) {
                Ok(None) | Err(StorageError::ChecksumMismatch { .. }) => {}
                Ok(Some(_)) => prop_assert!(false, "forged length {} decoded", fake_len),
                Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
            }
        }
    }
}

/// Exhaustive (non-property) sweep: every single-byte flip of a small WAL
/// record, checked deterministically so the CI log pins the full matrix.
#[test]
fn exhaustive_single_byte_flips_of_a_wal_record() {
    let record = encode_record(5, b"exhaustive-check");
    for i in 0..record.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bad = record.clone();
            bad[i] ^= mask;
            match decode_record(&bad, 5, 0, 1) {
                Ok(None) | Err(StorageError::ChecksumMismatch { .. }) => {}
                other => panic!("byte {i} mask {mask:#04x}: unexpected {other:?}"),
            }
        }
    }
}

const _: fn() = || {
    // `WAL_RECORD_HEADER` is part of the public corruption surface the
    // properties above rely on: the first 16 bytes are framing.
    let _ = [(); WAL_RECORD_HEADER - 16];
};
