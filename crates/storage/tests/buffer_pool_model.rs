//! Property tests for the storage substrate: the LRU buffer pool must behave
//! exactly like a reference model, and the Disk façade must preserve data
//! regardless of the access pattern and configuration.

use lidx_storage::{BlockKind, BufferPool, DeviceModel, Disk, DiskConfig, ShardedBufferPool};
use proptest::prelude::*;

/// A straightforward reference LRU: a vector ordered from most- to
/// least-recently used.
#[derive(Default)]
struct ModelLru {
    capacity: usize,
    entries: Vec<((u32, u32), Vec<u8>)>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru { capacity, entries: Vec::new() }
    }

    fn get(&mut self, key: (u32, u32)) -> Option<Vec<u8>> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let data = entry.1.clone();
        self.entries.insert(0, entry);
        Some(data)
    }

    fn put(&mut self, key: (u32, u32), data: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (key, data));
    }
}

#[derive(Debug, Clone)]
enum PoolOp {
    Get(u32),
    Put(u32, u8),
    Invalidate(u32),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (0u32..40).prop_map(PoolOp::Get),
        (0u32..40, any::<u8>()).prop_map(|(b, v)| PoolOp::Put(b, v)),
        (0u32..40).prop_map(PoolOp::Invalidate),
    ]
}

/// An op against the sharded pool: multi-file, multi-key get / put ("pin" in
/// buffer-manager terms: put then re-get) / invalidate sequences.
#[derive(Debug, Clone)]
enum ShardedOp {
    Get(u32, u32),
    Put(u32, u32, u8),
    Invalidate(u32, u32),
}

fn sharded_op() -> impl Strategy<Value = ShardedOp> {
    prop_oneof![
        (0u32..3, 0u32..32).prop_map(|(f, b)| ShardedOp::Get(f, b)),
        (0u32..3, 0u32..32, any::<u8>()).prop_map(|(f, b, v)| ShardedOp::Put(f, b, v)),
        (0u32..3, 0u32..32).prop_map(|(f, b)| ShardedOp::Invalidate(f, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn buffer_pool_matches_reference_lru(
        capacity in 0usize..12,
        ops in proptest::collection::vec(pool_op(), 1..200),
    ) {
        let mut pool = BufferPool::new(capacity);
        let mut model = ModelLru::new(capacity);
        let mut buf = vec![0u8; 32];
        for op in ops {
            match op {
                PoolOp::Get(b) => {
                    let hit = pool.get(0, b, &mut buf);
                    let expected = model.get((0, b));
                    prop_assert_eq!(hit, expected.is_some(), "hit/miss mismatch for block {}", b);
                    if let Some(e) = expected {
                        prop_assert_eq!(&buf, &e, "contents mismatch for block {}", b);
                    }
                }
                PoolOp::Put(b, v) => {
                    let data = vec![v; 32];
                    pool.put(0, b, &data);
                    model.put((0, b), data);
                }
                PoolOp::Invalidate(b) => {
                    pool.invalidate(0, b);
                    model.entries.retain(|(k, _)| *k != (0, b));
                }
            }
            prop_assert!(pool.len() <= capacity);
            prop_assert_eq!(pool.len(), model.entries.len());
        }
    }

    /// The lock-striped pool behaves, stripe by stripe, exactly like a
    /// sequential reference LRU: the shard of a block is a pure function of
    /// its key, and each shard is an independent strict-LRU of
    /// `shard_capacity()` blocks. Model-checked against [`ModelLru`] under
    /// interleaved multi-file get / put / invalidate sequences.
    #[test]
    fn sharded_pool_matches_per_shard_reference_lru(
        capacity in 0usize..24,
        ops in proptest::collection::vec(sharded_op(), 1..250),
    ) {
        let pool = ShardedBufferPool::new(capacity);
        let mut models: Vec<ModelLru> =
            (0..pool.shard_count()).map(|_| ModelLru::new(pool.shard_capacity())).collect();
        let mut buf = vec![0u8; 16];
        let mut gets = 0u64;
        for op in ops {
            match op {
                ShardedOp::Get(f, b) => {
                    gets += 1;
                    let hit = pool.get(f, b, &mut buf);
                    let expected = models[pool.shard_index(f, b)].get((f, b));
                    prop_assert_eq!(hit, expected.is_some(), "hit/miss mismatch for ({}, {})", f, b);
                    if let Some(e) = expected {
                        prop_assert_eq!(&buf, &e, "contents mismatch for ({}, {})", f, b);
                    }
                }
                ShardedOp::Put(f, b, v) => {
                    let data = vec![v; 16];
                    pool.put(f, b, &data);
                    models[pool.shard_index(f, b)].put((f, b), data);
                }
                ShardedOp::Invalidate(f, b) => {
                    pool.invalidate(f, b);
                    models[pool.shard_index(f, b)].entries.retain(|(k, _)| *k != (f, b));
                }
            }
            prop_assert_eq!(
                pool.len(),
                models.iter().map(|m| m.entries.len()).sum::<usize>(),
                "pool size must match the sum of the per-shard models"
            );
        }
        prop_assert_eq!(
            pool.hits() + pool.misses(),
            gets,
            "every get must be counted as exactly one hit or miss"
        );
    }

    /// Whatever the configuration (buffer, reuse, device), reads always
    /// return the last written contents of a block.
    #[test]
    fn disk_reads_return_last_written_contents(
        buffer_blocks in 0usize..8,
        reuse in any::<bool>(),
        writes in proptest::collection::vec((0u32..16, any::<u8>()), 1..100),
    ) {
        let disk = Disk::in_memory(
            DiskConfig::with_block_size(64)
                .buffer_blocks(buffer_blocks)
                .reuse_last_block(reuse)
                .device(DeviceModel::ssd()),
        );
        let file = disk.create_file().unwrap();
        disk.allocate(file, 16).unwrap();
        let mut expected = vec![vec![0u8; 64]; 16];
        for (block, value) in writes {
            let data = vec![value; 64];
            disk.write(file, block, BlockKind::Leaf, &data).unwrap();
            expected[block as usize] = data;
            // Read back a pseudo-random other block as well to churn the
            // caches.
            let probe = (block.wrapping_mul(7) + 3) % 16;
            let got = disk.read_vec(file, probe, BlockKind::Leaf).unwrap();
            prop_assert_eq!(&got, &expected[probe as usize]);
        }
        for block in 0..16u32 {
            let got = disk.read_vec(file, block, BlockKind::Leaf).unwrap();
            prop_assert_eq!(&got, &expected[block as usize]);
        }
    }
}
