//! Property tests for the storage substrate: the LRU buffer pool must behave
//! exactly like a reference model, and the Disk façade must preserve data
//! regardless of the access pattern and configuration.

use lidx_storage::{BlockKind, BufferPool, DeviceModel, Disk, DiskConfig};
use proptest::prelude::*;

/// A straightforward reference LRU: a vector ordered from most- to
/// least-recently used.
#[derive(Default)]
struct ModelLru {
    capacity: usize,
    entries: Vec<((u32, u32), Vec<u8>)>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru { capacity, entries: Vec::new() }
    }

    fn get(&mut self, key: (u32, u32)) -> Option<Vec<u8>> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let data = entry.1.clone();
        self.entries.insert(0, entry);
        Some(data)
    }

    fn put(&mut self, key: (u32, u32), data: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (key, data));
    }
}

#[derive(Debug, Clone)]
enum PoolOp {
    Get(u32),
    Put(u32, u8),
    Invalidate(u32),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (0u32..40).prop_map(PoolOp::Get),
        (0u32..40, any::<u8>()).prop_map(|(b, v)| PoolOp::Put(b, v)),
        (0u32..40).prop_map(PoolOp::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn buffer_pool_matches_reference_lru(
        capacity in 0usize..12,
        ops in proptest::collection::vec(pool_op(), 1..200),
    ) {
        let mut pool = BufferPool::new(capacity);
        let mut model = ModelLru::new(capacity);
        let mut buf = vec![0u8; 32];
        for op in ops {
            match op {
                PoolOp::Get(b) => {
                    let hit = pool.get(0, b, &mut buf);
                    let expected = model.get((0, b));
                    prop_assert_eq!(hit, expected.is_some(), "hit/miss mismatch for block {}", b);
                    if let Some(e) = expected {
                        prop_assert_eq!(&buf, &e, "contents mismatch for block {}", b);
                    }
                }
                PoolOp::Put(b, v) => {
                    let data = vec![v; 32];
                    pool.put(0, b, &data);
                    model.put((0, b), data);
                }
                PoolOp::Invalidate(b) => {
                    pool.invalidate(0, b);
                    model.entries.retain(|(k, _)| *k != (0, b));
                }
            }
            prop_assert!(pool.len() <= capacity);
            prop_assert_eq!(pool.len(), model.entries.len());
        }
    }

    /// Whatever the configuration (buffer, reuse, device), reads always
    /// return the last written contents of a block.
    #[test]
    fn disk_reads_return_last_written_contents(
        buffer_blocks in 0usize..8,
        reuse in any::<bool>(),
        writes in proptest::collection::vec((0u32..16, any::<u8>()), 1..100),
    ) {
        let disk = Disk::in_memory(
            DiskConfig::with_block_size(64)
                .buffer_blocks(buffer_blocks)
                .reuse_last_block(reuse)
                .device(DeviceModel::ssd()),
        );
        let file = disk.create_file().unwrap();
        disk.allocate(file, 16).unwrap();
        let mut expected = vec![vec![0u8; 64]; 16];
        for (block, value) in writes {
            let data = vec![value; 64];
            disk.write(file, block, BlockKind::Leaf, &data).unwrap();
            expected[block as usize] = data;
            // Read back a pseudo-random other block as well to churn the
            // caches.
            let probe = (block.wrapping_mul(7) + 3) % 16;
            let got = disk.read_vec(file, probe, BlockKind::Leaf).unwrap();
            prop_assert_eq!(&got, &expected[probe as usize]);
        }
        for block in 0..16u32 {
            let got = disk.read_vec(file, block, BlockKind::Leaf).unwrap();
            prop_assert_eq!(&got, &expected[block as usize]);
        }
    }
}
