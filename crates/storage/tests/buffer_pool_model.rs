//! Property tests for the storage substrate: every buffer pool policy (LRU,
//! CLOCK, 2Q — unpartitioned and with a reserved inner partition) must
//! behave exactly like a straightforward reference model under arbitrary
//! access traces, and the Disk façade must preserve data regardless of the
//! access pattern and configuration.

use lidx_storage::{
    AccessClass, BlockKind, BlockRef, BufferPool, DeviceModel, Disk, DiskConfig, PoolConfig,
    PoolPartitions, ReplacementPolicy, ShardedBufferPool,
};
use proptest::prelude::*;

/// A straightforward reference LRU: a vector ordered from most- to
/// least-recently used.
#[derive(Default)]
struct ModelLru {
    capacity: usize,
    entries: Vec<((u32, u32), Vec<u8>)>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru { capacity, entries: Vec::new() }
    }

    fn get(&mut self, key: (u32, u32)) -> Option<Vec<u8>> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let data = entry.1.clone();
        self.entries.insert(0, entry);
        Some(data)
    }

    fn put(&mut self, key: (u32, u32), data: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (key, data));
    }
}

/// A reference model of one pool partition under one replacement policy,
/// built from plain `Vec` queues — the "obviously correct" executable
/// specification the slab-and-intrusive-list implementation is checked
/// against.
///
/// Queue conventions (mirroring the documented implementation semantics):
/// * LRU: `main` front = MRU; evict from the back.
/// * CLOCK: `main` front = hand, back = newest; a point hit sets the
///   reference bit in place; eviction rotates referenced frames to the back
///   (clearing the bit) and evicts the first unreferenced frame; admission
///   pushes to the back with the bit clear.
/// * 2Q: `main` is the probation FIFO (front = newest, evict from the
///   back); `prot` front = MRU, capped at `max(1, 3/4 cap)` — a point hit in
///   probation promotes, swapping with the protected LRU tail when full; a
///   scan hit changes nothing; eviction drains probation before protected.
struct ModelPart {
    policy: ReplacementPolicy,
    capacity: usize,
    main: Vec<((u32, u32), Vec<u8>, bool)>,
    prot: Vec<((u32, u32), Vec<u8>)>,
}

impl ModelPart {
    fn new(policy: ReplacementPolicy, capacity: usize) -> Self {
        ModelPart { policy, capacity, main: Vec::new(), prot: Vec::new() }
    }

    fn len(&self) -> usize {
        self.main.len() + self.prot.len()
    }

    fn contains(&self, key: (u32, u32)) -> bool {
        self.main.iter().any(|(k, ..)| *k == key) || self.prot.iter().any(|(k, _)| *k == key)
    }

    fn protected_cap(&self) -> usize {
        (self.capacity * 3 / 4).max(1)
    }

    fn touch(&mut self, key: (u32, u32), class: AccessClass, data: Option<Vec<u8>>) {
        match self.policy {
            ReplacementPolicy::Lru => {
                let pos = self.main.iter().position(|(k, ..)| *k == key).unwrap();
                let mut e = self.main.remove(pos);
                if let Some(d) = data {
                    e.1 = d;
                }
                self.main.insert(0, e);
            }
            ReplacementPolicy::Clock => {
                let pos = self.main.iter().position(|(k, ..)| *k == key).unwrap();
                if let Some(d) = data {
                    self.main[pos].1 = d;
                }
                if class == AccessClass::Point {
                    self.main[pos].2 = true;
                }
            }
            ReplacementPolicy::TwoQ => {
                if let Some(pos) = self.prot.iter().position(|(k, _)| *k == key) {
                    let mut e = self.prot.remove(pos);
                    if let Some(d) = data {
                        e.1 = d;
                    }
                    self.prot.insert(0, e);
                } else {
                    let pos = self.main.iter().position(|(k, ..)| *k == key).unwrap();
                    if let Some(d) = data {
                        self.main[pos].1 = d;
                    }
                    if class == AccessClass::Point {
                        let (k, d, _) = self.main.remove(pos);
                        self.prot.insert(0, (k, d));
                        if self.prot.len() > self.protected_cap() {
                            let (dk, dd) = self.prot.pop().unwrap();
                            self.main.insert(0, (dk, dd, false));
                        }
                    }
                }
            }
        }
    }

    fn get(&mut self, key: (u32, u32), class: AccessClass) -> Option<Vec<u8>> {
        if !self.contains(key) {
            return None;
        }
        self.touch(key, class, None);
        let data = self
            .main
            .iter()
            .find(|(k, ..)| *k == key)
            .map(|(_, d, _)| d.clone())
            .or_else(|| self.prot.iter().find(|(k, _)| *k == key).map(|(_, d)| d.clone()));
        data
    }

    fn put(&mut self, key: (u32, u32), data: Vec<u8>, class: AccessClass) {
        if self.capacity == 0 {
            return;
        }
        if self.contains(key) {
            self.touch(key, class, Some(data));
            return;
        }
        if self.len() >= self.capacity {
            match self.policy {
                ReplacementPolicy::Lru => {
                    self.main.pop();
                }
                ReplacementPolicy::Clock => loop {
                    let mut front = self.main.remove(0);
                    if front.2 {
                        front.2 = false;
                        self.main.push(front);
                    } else {
                        break;
                    }
                },
                ReplacementPolicy::TwoQ => {
                    if self.main.is_empty() {
                        self.prot.pop();
                    } else {
                        self.main.pop();
                    }
                }
            }
        }
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::TwoQ => {
                self.main.insert(0, (key, data, false));
            }
            ReplacementPolicy::Clock => self.main.push((key, data, false)),
        }
    }

    fn invalidate(&mut self, key: (u32, u32)) {
        self.main.retain(|(k, ..)| *k != key);
        self.prot.retain(|(k, _)| *k != key);
    }
}

/// The partition-routing layer of the reference model.
struct ModelPool {
    parts: Vec<ModelPart>,
}

impl ModelPool {
    fn new(config: PoolConfig) -> Self {
        let parts = config
            .partition_capacities()
            .into_iter()
            .map(|cap| ModelPart::new(config.policy, cap))
            .collect();
        ModelPool { parts }
    }

    fn part_for(&mut self, kind: BlockKind) -> &mut ModelPart {
        let idx = if self.parts.len() == 1 {
            0
        } else {
            match kind {
                BlockKind::Meta | BlockKind::Inner => 0,
                BlockKind::Leaf | BlockKind::Utility => 1,
            }
        };
        &mut self.parts[idx]
    }

    fn len(&self) -> usize {
        self.parts.iter().map(ModelPart::len).sum()
    }

    fn contains(&self, key: (u32, u32)) -> bool {
        self.parts.iter().any(|p| p.contains(key))
    }

    fn get(&mut self, key: (u32, u32), class: AccessClass) -> Option<Vec<u8>> {
        self.parts.iter_mut().find(|p| p.contains(key)).and_then(|p| p.get(key, class))
    }

    fn put(&mut self, key: (u32, u32), kind: BlockKind, data: Vec<u8>, class: AccessClass) {
        // A refresh stays in whatever partition holds the block (matching
        // `BufferPool::put_ref`); only fresh admissions route by kind.
        if let Some(p) = self.parts.iter_mut().find(|p| p.contains(key)) {
            p.put(key, data, class);
        } else {
            self.part_for(kind).put(key, data, class);
        }
    }

    fn invalidate(&mut self, key: (u32, u32)) {
        for p in &mut self.parts {
            p.invalidate(key);
        }
    }
}

#[derive(Debug, Clone)]
enum ClassOp {
    Get(u32, AccessClass),
    Put(u32, BlockKind, AccessClass, u8),
    Invalidate(u32),
}

fn access_class() -> impl Strategy<Value = AccessClass> {
    prop_oneof![Just(AccessClass::Point), Just(AccessClass::Scan)]
}

fn block_kind() -> impl Strategy<Value = BlockKind> {
    prop_oneof![
        Just(BlockKind::Meta),
        Just(BlockKind::Inner),
        Just(BlockKind::Leaf),
        Just(BlockKind::Utility),
    ]
}

fn class_op() -> impl Strategy<Value = ClassOp> {
    prop_oneof![
        (0u32..24, access_class()).prop_map(|(b, c)| ClassOp::Get(b, c)),
        (0u32..24, block_kind(), access_class(), any::<u8>())
            .prop_map(|(b, k, c, v)| ClassOp::Put(b, k, c, v)),
        (0u32..24).prop_map(ClassOp::Invalidate),
    ]
}

fn replacement_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Clock),
        Just(ReplacementPolicy::TwoQ),
    ]
}

fn pool_partitions() -> impl Strategy<Value = PoolPartitions> {
    prop_oneof![
        Just(PoolPartitions::Unified),
        Just(PoolPartitions::InnerReserved { percent: 25 }),
        Just(PoolPartitions::InnerReserved { percent: 50 }),
    ]
}

#[derive(Debug, Clone)]
enum PoolOp {
    Get(u32),
    Put(u32, u8),
    Invalidate(u32),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (0u32..40).prop_map(PoolOp::Get),
        (0u32..40, any::<u8>()).prop_map(|(b, v)| PoolOp::Put(b, v)),
        (0u32..40).prop_map(PoolOp::Invalidate),
    ]
}

/// An op against the sharded pool: multi-file, multi-key get / put ("pin" in
/// buffer-manager terms: put then re-get) / invalidate sequences.
#[derive(Debug, Clone)]
enum ShardedOp {
    Get(u32, u32),
    Put(u32, u32, u8),
    Invalidate(u32, u32),
}

fn sharded_op() -> impl Strategy<Value = ShardedOp> {
    prop_oneof![
        (0u32..3, 0u32..32).prop_map(|(f, b)| ShardedOp::Get(f, b)),
        (0u32..3, 0u32..32, any::<u8>()).prop_map(|(f, b, v)| ShardedOp::Put(f, b, v)),
        (0u32..3, 0u32..32).prop_map(|(f, b)| ShardedOp::Invalidate(f, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// The eviction-order model test of every replacement policy: under an
    /// arbitrary trace of kind- and class-tagged gets / puts / invalidates,
    /// the pool must agree with the [`ModelPool`] reference on every hit,
    /// every returned byte, the resident size and the full residency set —
    /// for LRU, CLOCK and 2Q, with and without a reserved inner partition.
    #[test]
    fn every_policy_matches_its_reference_model(
        capacity in 0usize..12,
        policy in replacement_policy(),
        partitions in pool_partitions(),
        ops in proptest::collection::vec(class_op(), 1..250),
    ) {
        let config = PoolConfig::new(capacity).policy(policy).partitions(partitions);
        let mut pool = BufferPool::with_config(config);
        let mut model = ModelPool::new(config);
        for op in ops {
            match op {
                ClassOp::Get(b, class) => {
                    let got = pool.get_ref(0, b, class);
                    let expected = model.get((0, b), class);
                    prop_assert_eq!(
                        got.is_some(),
                        expected.is_some(),
                        "{}/{}: hit/miss mismatch for block {}",
                        policy.name(),
                        partitions.name(),
                        b
                    );
                    if let (Some(g), Some(e)) = (got, expected) {
                        prop_assert_eq!(&g[..], &e[..], "contents mismatch for block {}", b);
                    }
                }
                ClassOp::Put(b, kind, class, v) => {
                    let data = vec![v; 16];
                    pool.put_ref(0, b, kind, class, BlockRef::from_vec(data.clone()));
                    model.put((0, b), kind, data, class);
                }
                ClassOp::Invalidate(b) => {
                    pool.invalidate(0, b);
                    model.invalidate((0, b));
                }
            }
            prop_assert!(pool.len() <= capacity);
            prop_assert_eq!(pool.len(), model.len(), "resident-set size diverges");
            for b in 0..24u32 {
                prop_assert_eq!(
                    pool.contains(0, b),
                    model.contains((0, b)),
                    "{}/{}: residency diverges for block {}",
                    policy.name(),
                    partitions.name(),
                    b
                );
            }
        }
    }

    #[test]
    fn buffer_pool_matches_reference_lru(
        capacity in 0usize..12,
        ops in proptest::collection::vec(pool_op(), 1..200),
    ) {
        let mut pool = BufferPool::new(capacity);
        let mut model = ModelLru::new(capacity);
        let mut buf = vec![0u8; 32];
        for op in ops {
            match op {
                PoolOp::Get(b) => {
                    let hit = pool.get(0, b, &mut buf);
                    let expected = model.get((0, b));
                    prop_assert_eq!(hit, expected.is_some(), "hit/miss mismatch for block {}", b);
                    if let Some(e) = expected {
                        prop_assert_eq!(&buf, &e, "contents mismatch for block {}", b);
                    }
                }
                PoolOp::Put(b, v) => {
                    let data = vec![v; 32];
                    pool.put(0, b, &data);
                    model.put((0, b), data);
                }
                PoolOp::Invalidate(b) => {
                    pool.invalidate(0, b);
                    model.entries.retain(|(k, _)| *k != (0, b));
                }
            }
            prop_assert!(pool.len() <= capacity);
            prop_assert_eq!(pool.len(), model.entries.len());
        }
    }

    /// The lock-striped pool behaves, stripe by stripe, exactly like a
    /// sequential reference LRU: the shard of a block is a pure function of
    /// its key, and each shard is an independent strict-LRU of
    /// `shard_capacity()` blocks. Model-checked against [`ModelLru`] under
    /// interleaved multi-file get / put / invalidate sequences.
    #[test]
    fn sharded_pool_matches_per_shard_reference_lru(
        capacity in 0usize..24,
        ops in proptest::collection::vec(sharded_op(), 1..250),
    ) {
        let pool = ShardedBufferPool::new(capacity);
        let mut models: Vec<ModelLru> =
            (0..pool.shard_count()).map(|_| ModelLru::new(pool.shard_capacity())).collect();
        let mut buf = vec![0u8; 16];
        let mut gets = 0u64;
        for op in ops {
            match op {
                ShardedOp::Get(f, b) => {
                    gets += 1;
                    let hit = pool.get(f, b, &mut buf);
                    let expected = models[pool.shard_index(f, b)].get((f, b));
                    prop_assert_eq!(hit, expected.is_some(), "hit/miss mismatch for ({}, {})", f, b);
                    if let Some(e) = expected {
                        prop_assert_eq!(&buf, &e, "contents mismatch for ({}, {})", f, b);
                    }
                }
                ShardedOp::Put(f, b, v) => {
                    let data = vec![v; 16];
                    pool.put(f, b, &data);
                    models[pool.shard_index(f, b)].put((f, b), data);
                }
                ShardedOp::Invalidate(f, b) => {
                    pool.invalidate(f, b);
                    models[pool.shard_index(f, b)].entries.retain(|(k, _)| *k != (f, b));
                }
            }
            prop_assert_eq!(
                pool.len(),
                models.iter().map(|m| m.entries.len()).sum::<usize>(),
                "pool size must match the sum of the per-shard models"
            );
        }
        prop_assert_eq!(
            pool.hits() + pool.misses(),
            gets,
            "every get must be counted as exactly one hit or miss"
        );
    }

    /// Whatever the configuration (buffer, reuse, device), reads always
    /// return the last written contents of a block.
    #[test]
    fn disk_reads_return_last_written_contents(
        buffer_blocks in 0usize..8,
        reuse in any::<bool>(),
        writes in proptest::collection::vec((0u32..16, any::<u8>()), 1..100),
    ) {
        let disk = Disk::in_memory(
            DiskConfig::with_block_size(64)
                .buffer_blocks(buffer_blocks)
                .reuse_last_block(reuse)
                .device(DeviceModel::ssd()),
        );
        let file = disk.create_file().unwrap();
        disk.allocate(file, 16).unwrap();
        let mut expected = vec![vec![0u8; 64]; 16];
        for (block, value) in writes {
            let data = vec![value; 64];
            disk.write(file, block, BlockKind::Leaf, &data).unwrap();
            expected[block as usize] = data;
            // Read back a pseudo-random other block as well to churn the
            // caches.
            let probe = (block.wrapping_mul(7) + 3) % 16;
            let got = disk.read_vec(file, probe, BlockKind::Leaf).unwrap();
            prop_assert_eq!(&got, &expected[probe as usize]);
        }
        for block in 0..16u32 {
            let got = disk.read_vec(file, block, BlockKind::Leaf).unwrap();
            prop_assert_eq!(&got, &expected[block as usize]);
        }
    }
}
