//! Shared helpers for the Criterion benchmark suite.
//!
//! Every bench target corresponds to one table or figure family of the
//! paper's evaluation (see `DESIGN.md` §3 for the mapping). Benchmarks run at
//! a reduced scale so `cargo bench --workspace` completes in minutes; the
//! `exp` binary in `lidx-experiments` regenerates the full tables.

use std::sync::Arc;

use lidx_core::DiskIndex;
use lidx_experiments::runner::{IndexChoice, RunConfig};
use lidx_storage::{DeviceModel, Disk};
use lidx_workloads::{Dataset, Workload, WorkloadKind, WorkloadSpec};

/// Number of keys used by the benchmark datasets.
pub const BENCH_KEYS: usize = 50_000;
/// Number of operations executed per measured iteration batch.
pub const BENCH_OPS: usize = 200;

/// Builds a disk with the paper's default configuration (4 KB blocks, no
/// buffer pool) and no device latency so wall-clock time reflects the work
/// the index implementation actually does.
pub fn bench_disk(block_size: usize) -> Arc<Disk> {
    Disk::in_memory(
        lidx_storage::DiskConfig::with_block_size(block_size).device(DeviceModel::none()),
    )
}

/// Builds and bulk loads `choice` over `dataset` at the benchmark scale.
pub fn loaded_index(
    choice: IndexChoice,
    dataset: Dataset,
    block_size: usize,
) -> (Box<dyn DiskIndex>, Workload) {
    let keys = dataset.generate_keys(BENCH_KEYS, 0xBEEF);
    let workload =
        Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, BENCH_OPS, 0));
    let disk = bench_disk(block_size);
    let mut index = choice.build(disk);
    index.bulk_load(&workload.bulk).expect("bulk load");
    (index, workload)
}

/// A run configuration with no simulated latency (used where benches call the
/// higher-level runner).
pub fn bench_config() -> RunConfig {
    RunConfig { device: DeviceModel::none(), ..Default::default() }
}

/// The indexes compared by most benches.
pub const BENCH_INDEXES: [IndexChoice; 5] = IndexChoice::EVALUATED;
