//! Beyond the paper — scaling of the shared (concurrent) read path.
//!
//! The paper's evaluation is single-threaded; this bench measures what the
//! `IndexRead` trait split buys: N reader threads over one frozen index,
//! with the device cost model *realised* as blocking time (25 µs per random
//! read, SSD-like but scaled down so the sweep stays fast). Each measured
//! iteration performs a fixed total of [`LOOKUPS_PER_ROUND`] lookups split
//! across the threads, so the per-iteration time dropping with the thread
//! count is aggregate-throughput scaling: readers overlap their simulated
//! I/O waits exactly as outstanding requests overlap on a real disk. Had the
//! storage layer still serialised every read behind one mutex, the sleep
//! would happen under the lock and the sweep would stay flat at 1.0x.
//!
//! A summary table of aggregate throughput and speedup vs one thread is
//! printed after the Criterion measurements.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_core::DiskIndex;
use lidx_experiments::runner::IndexChoice;
use lidx_storage::{DeviceModel, Disk, DiskConfig};
use lidx_workloads::Dataset;

/// Total lookups per measured round, split evenly across the reader threads.
const LOOKUPS_PER_ROUND: usize = 192;
/// Reader-thread counts swept by the bench.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Indexes covered (one per structural family keeps the sweep quick; the
/// `par_lookup` experiment target sweeps all seven variants).
const CHOICES: [IndexChoice; 3] = [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::HybridPla];

fn sim_ssd_disk() -> Arc<Disk> {
    Disk::in_memory(
        DiskConfig::with_block_size(4096)
            .device(DeviceModel::custom("ssd-25us", 25_000, 30_000, 15_000))
            .simulate_latency(true),
    )
}

fn loaded(choice: IndexChoice) -> (Box<dyn DiskIndex>, Vec<u64>) {
    let keys = Dataset::Ycsb.generate_keys(50_000, 0xC0C0);
    let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k + 1)).collect();
    let mut index = choice.build(sim_ssd_disk());
    index.bulk_load(&entries).expect("bulk load");
    let probe: Vec<u64> = keys.iter().step_by(131).copied().collect();
    (index, probe)
}

/// One measured round: `LOOKUPS_PER_ROUND` lookups split across `threads`.
fn round(index: &dyn DiskIndex, probe: &[u64], threads: usize, round_no: usize) {
    let per_thread = LOOKUPS_PER_ROUND / threads;
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let base = round_no * LOOKUPS_PER_ROUND + t * per_thread;
                for i in 0..per_thread {
                    let k = probe[(base + i) % probe.len()];
                    index.lookup(k).expect("lookup");
                }
            });
        }
    });
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_reads");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1200));
    for choice in CHOICES {
        let (index, probe) = loaded(choice);
        for threads in THREAD_SWEEP {
            let mut round_no = 0;
            group.bench_function(BenchmarkId::new(choice.name(), format!("t{threads}")), |b| {
                b.iter(|| {
                    round(&*index, &probe, threads, round_no);
                    round_no += 1;
                })
            });
        }
    }
    group.finish();
}

/// Prints aggregate lookups/second and the speedup over one thread, the
/// acceptance signal for the concurrent read path (>1.5x at 4 threads).
fn scaling_summary(_c: &mut Criterion) {
    eprintln!("  --- aggregate throughput summary (simulated 25us SSD) ---");
    for choice in CHOICES {
        let (index, probe) = loaded(choice);
        let mut base = 0.0f64;
        for threads in THREAD_SWEEP {
            const ROUNDS: usize = 8;
            // One untimed warm round, then a few timed ones.
            round(&*index, &probe, threads, 0);
            let t0 = Instant::now();
            for r in 1..=ROUNDS {
                round(&*index, &probe, threads, r);
            }
            let secs = t0.elapsed().as_secs_f64();
            let ops_per_sec = (ROUNDS * LOOKUPS_PER_ROUND) as f64 / secs;
            if threads == 1 {
                base = ops_per_sec;
            }
            eprintln!(
                "  {:>12} t{}: {:>10.0} ops/s  ({:.2}x vs 1 thread)",
                choice.name(),
                threads,
                ops_per_sec,
                ops_per_sec / base
            );
        }
    }
}

criterion_group!(benches, bench_thread_scaling, scaling_summary);
criterion_main!(benches);
