//! Fig. 11 — impact of the block size on lookup cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_bench::{loaded_index, BENCH_INDEXES};
use lidx_workloads::Dataset;

fn bench_block_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_block_size");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for block_size in [1024usize, 4096, 16384] {
        for choice in BENCH_INDEXES {
            let (index, workload) = loaded_index(choice, Dataset::Fb, block_size);
            let keys: Vec<u64> = workload.bulk.iter().step_by(131).map(|e| e.0).collect();
            group.bench_function(
                BenchmarkId::new(choice.name(), format!("{}KB", block_size / 1024)),
                |b| {
                    let mut i = 0;
                    b.iter(|| {
                        let k = keys[i % keys.len()];
                        i += 1;
                        index.lookup(k).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_block_sizes);
criterion_main!(benches);
