//! Outstanding-read engine: batched lookups across a queue-depth sweep.
//!
//! The read queue charges a completion wave the *max* of its members' device
//! costs instead of their sum, modelling depth-parallel service (an io_uring
//! shape). With the cost model *realised* as blocking time (25 µs per random
//! read, SSD-like but scaled down so the sweep stays fast), deeper queues
//! turn directly into shorter wall-clock time for the same batch of lookups:
//! a depth-32 wave sleeps once for its slowest member where depth 1 sleeps
//! once per read. Each measured iteration issues a fixed total of
//! [`LOOKUPS_PER_ROUND`] lookups through `lookup_batch` on an index whose
//! disk was built at the swept queue depth; depth 1 degenerates to the fully
//! synchronous path and anchors the sweep.
//!
//! A summary table of per-round wall time and the speedup vs depth 1 is
//! printed after the Criterion measurements; CI runs this bench as a smoke
//! gate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_core::DiskIndex;
use lidx_experiments::runner::IndexChoice;
use lidx_storage::{DeviceModel, Disk, DiskConfig};
use lidx_workloads::Dataset;

/// Total lookups per measured round, issued as `BATCH`-key batches.
const LOOKUPS_PER_ROUND: usize = 192;
/// Keys per `lookup_batch` call.
const BATCH: usize = 64;
/// Outstanding-read queue depths swept by the bench (1 = synchronous path).
const DEPTH_SWEEP: [usize; 4] = [1, 4, 8, 32];
/// Indexes covered (one per structural family keeps the sweep quick; the
/// `batch_lookup` experiment target sweeps all seven variants).
const CHOICES: [IndexChoice; 3] = [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::Fiting];

/// A small pool forces most probe reads to the device, where the 25 µs
/// simulated latency makes wave overlap visible as wall time.
fn sim_ssd_disk(depth: usize) -> Arc<Disk> {
    Disk::in_memory(
        DiskConfig::with_block_size(4096)
            .device(DeviceModel::custom("ssd-25us", 25_000, 30_000, 15_000))
            .buffer_blocks(64)
            .queue_depth(depth)
            .simulate_latency(true),
    )
}

fn loaded(choice: IndexChoice, depth: usize) -> (Box<dyn DiskIndex>, Vec<u64>) {
    let keys = Dataset::Ycsb.generate_keys(50_000, 0xD1A6);
    let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k + 1)).collect();
    let mut index = choice.build(sim_ssd_disk(depth));
    index.bulk_load(&entries).expect("bulk load");
    let probe: Vec<u64> = keys.iter().step_by(113).copied().collect();
    (index, probe)
}

/// One measured round: `LOOKUPS_PER_ROUND` lookups in `BATCH`-key batches.
fn round(index: &dyn DiskIndex, probe: &[u64], round_no: usize, out: &mut Vec<Option<u64>>) {
    let base = round_no * LOOKUPS_PER_ROUND;
    let mut chunk = [0u64; BATCH];
    for c in 0..LOOKUPS_PER_ROUND / BATCH {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = probe[(base + c * BATCH + i) % probe.len()];
        }
        index.lookup_batch(&chunk, out).expect("lookup_batch");
        black_box(out.len());
    }
}

fn bench_queue_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_depth");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1200));
    for choice in CHOICES {
        for depth in DEPTH_SWEEP {
            let (index, probe) = loaded(choice, depth);
            let mut out = Vec::with_capacity(BATCH);
            let mut round_no = 0;
            group.bench_function(BenchmarkId::new(choice.name(), format!("qd{depth}")), |b| {
                b.iter(|| {
                    round(&*index, &probe, round_no, &mut out);
                    round_no += 1;
                })
            });
        }
    }
    group.finish();
}

/// Prints per-round wall time and the speedup over depth 1, the acceptance
/// signal for the outstanding-read engine (>2x at depth 32).
fn depth_summary(_c: &mut Criterion) {
    eprintln!("  --- queue-depth sweep summary (simulated 25us SSD) ---");
    for choice in CHOICES {
        let mut base = 0.0f64;
        for depth in DEPTH_SWEEP {
            const ROUNDS: usize = 8;
            let (index, probe) = loaded(choice, depth);
            let mut out = Vec::with_capacity(BATCH);
            // One untimed warm round, then a few timed ones.
            round(&*index, &probe, 0, &mut out);
            let t0 = Instant::now();
            for r in 1..=ROUNDS {
                round(&*index, &probe, r, &mut out);
            }
            let per_round_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
            if depth == 1 {
                base = per_round_us;
            }
            eprintln!(
                "  {:>12} qd{:<2}: {:>9.0} us/round  ({:.2}x vs depth 1)",
                choice.name(),
                depth,
                per_round_us,
                base / per_round_us
            );
        }
    }
}

criterion_group!(benches, bench_queue_depth, depth_summary);
criterion_main!(benches);
