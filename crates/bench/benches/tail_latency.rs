//! Fig. 12 — tail latency: measures per-operation simulated device time and
//! reports the p99 via a custom summary printed once per run.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_bench::BENCH_INDEXES;
use lidx_experiments::runner::{run_workload, RunConfig};
use lidx_storage::DeviceModel;
use lidx_workloads::{Dataset, Workload, WorkloadKind, WorkloadSpec};

fn bench_tail_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_tail_latency");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let keys = Dataset::Fb.generate_keys(40_000, 0x7A11);
    let workload = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 300, 0));
    let config = RunConfig { device: DeviceModel::hdd(), ..Default::default() };
    for choice in BENCH_INDEXES {
        group.bench_function(BenchmarkId::new("lookup_only", choice.name()), |b| {
            b.iter(|| {
                let report = run_workload(choice, &config, &workload);
                // The benchmark's measured value is the wall-clock time of the
                // full workload run; the simulated p99 is what Fig. 12 reports
                // and is printed by the `exp fig12` target.
                report.latency.p99_ns
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tail_latency);
criterion_main!(benches);
