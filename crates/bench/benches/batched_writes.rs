//! The batched write path: `insert_batch` and the `WriteBuffer` group
//! commit versus per-key inserts.
//!
//! Two claims of the write-side API redesign are measured in wall-clock
//! time (no device latency, so index CPU work and block (de)serialisation
//! are all that remain; the simulated-device contrast lives in
//! `exp batch_insert` / `BENCH_write.json`):
//!
//! 1. **`insert_batch` beats N sequential inserts** — a sorted batch
//!    descends once per leaf run, fills each delta buffer with one
//!    read-modify-write and rewrites PGM's insert run once, so the per-key
//!    structural work collapses. The `batched_inserts` group compares the
//!    two on the B+-tree, FITing-tree and PGM overrides plus the hybrid's
//!    deferred-rebuild append.
//! 2. **The `WriteBuffer` makes group commit free for callers** — per-key
//!    inserts through the staging buffer (overlay upsert + periodic sorted
//!    drain) cost less than per-key inserts applied directly, because every
//!    drain rides `insert_batch`. The `write_buffer` group measures the
//!    staging front end to end, final flush included.
//!
//! Each measured iteration builds a fresh bulk-loaded index and applies the
//! same insert stream; build cost is identical across configurations, so
//! the delta between rows is the insert strategy. CI runs this bench as a
//! smoke gate alongside `batched_reads`.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_bench::bench_disk;
use lidx_core::{DiskIndex, IndexWrite, WriteBuffer, WriteBufferConfig};
use lidx_experiments::runner::IndexChoice;
use lidx_workloads::Dataset;

/// Bulk-loaded keys per measured index build.
const BULK: usize = 20_000;
/// Inserts applied per measured iteration.
const INSERTS: usize = 512;
/// Entries per `insert_batch` call in the batched configuration.
const BATCH: usize = 64;
/// Indexes covered: the three specialised `insert_batch` overrides plus the
/// hybrid's deferred-rebuild append.
const CHOICES: [IndexChoice; 4] =
    [IndexChoice::BTree, IndexChoice::Fiting, IndexChoice::Pgm, IndexChoice::HybridPla];

type Entries = Vec<(u64, u64)>;

fn workload() -> (Entries, Entries) {
    let keys = Dataset::Ycsb.generate_keys(BULK, 0xB17E);
    let bulk: Entries = keys.iter().map(|&k| (k, k + 1)).collect();
    // Insert keys interleave with the bulk keys (fresh, never duplicates).
    let inserts: Entries =
        keys.iter().step_by(BULK / INSERTS).take(INSERTS).map(|&k| (k + 1, k)).collect();
    (bulk, inserts)
}

fn loaded(choice: IndexChoice, bulk: &[(u64, u64)]) -> Box<dyn DiskIndex> {
    let mut index = choice.build(bench_disk(4096));
    index.bulk_load(bulk).expect("bulk load");
    index
}

/// Claim 1: the same insert stream, per key vs `insert_batch` chunks.
fn bench_batched_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_inserts");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(900));
    let (bulk, inserts) = workload();
    for choice in CHOICES {
        group.bench_function(BenchmarkId::new(choice.name(), "per_key"), |b| {
            b.iter(|| {
                let mut index = loaded(choice, &bulk);
                for &(k, v) in &inserts {
                    index.insert(k, v).expect("insert");
                }
                black_box(index.len())
            })
        });
        group.bench_function(BenchmarkId::new(choice.name(), format!("batch{BATCH}")), |b| {
            b.iter(|| {
                let mut index = loaded(choice, &bulk);
                for chunk in inserts.chunks(BATCH) {
                    index.insert_batch(chunk).expect("insert_batch");
                }
                black_box(index.len())
            })
        });
    }
    group.finish();
}

/// Claim 2: per-key inserts, direct vs staged behind a `WriteBuffer`
/// (drains included — `into_inner` flushes before the iteration ends).
fn bench_write_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_buffer");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(900));
    let (bulk, inserts) = workload();
    let cfg = WriteBufferConfig { capacity: 128, drain: 64 };
    for choice in [IndexChoice::BTree, IndexChoice::Pgm] {
        group.bench_function(BenchmarkId::new(choice.name(), "direct"), |b| {
            b.iter(|| {
                let mut index = loaded(choice, &bulk);
                for &(k, v) in &inserts {
                    index.insert(k, v).expect("insert");
                }
                black_box(index.len())
            })
        });
        group.bench_function(BenchmarkId::new(choice.name(), "buffered"), |b| {
            b.iter(|| {
                let mut buffered = WriteBuffer::new(loaded(choice, &bulk), cfg);
                for &(k, v) in &inserts {
                    buffered.insert(k, v).expect("buffered insert");
                }
                let index = buffered.into_inner().expect("drain");
                black_box(index.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched_inserts, bench_write_buffer);
criterion_main!(benches);
