//! Fig. 3 / Fig. 4 / Table 4 — Lookup-Only and Scan-Only performance of the
//! five indexes on the three representative datasets.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_bench::{loaded_index, BENCH_INDEXES};
use lidx_workloads::Dataset;

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_lookup_only");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for dataset in Dataset::REPRESENTATIVE {
        for choice in BENCH_INDEXES {
            let (index, workload) = loaded_index(choice, dataset, 4096);
            let keys: Vec<u64> = workload.bulk.iter().step_by(97).map(|e| e.0).collect();
            group.bench_function(BenchmarkId::new(choice.name(), dataset.name()), |b| {
                let mut i = 0;
                b.iter(|| {
                    let k = keys[i % keys.len()];
                    i += 1;
                    index.lookup(k).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_scan_only");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for dataset in Dataset::REPRESENTATIVE {
        for choice in BENCH_INDEXES {
            let (index, workload) = loaded_index(choice, dataset, 4096);
            let keys: Vec<u64> = workload.bulk.iter().step_by(211).map(|e| e.0).collect();
            let mut out = Vec::with_capacity(128);
            group.bench_function(BenchmarkId::new(choice.name(), dataset.name()), |b| {
                let mut i = 0;
                b.iter(|| {
                    let k = keys[i % keys.len()];
                    i += 1;
                    index.scan(k, 100, &mut out).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lookups, bench_scans);
criterion_main!(benches);
