//! Table 5 / Fig. 8 — hybrid designs and the memory-resident-inner setting.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_experiments::runner::IndexChoice;
use lidx_storage::{BlockKind, DeviceModel, Disk, DiskConfig};
use lidx_workloads::Dataset;

fn bench_hybrids(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_hybrid_lookup");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let keys = Dataset::Fb.generate_keys(50_000, 0x9A9A);
    let entries: Vec<_> = keys.iter().map(|&k| (k, k + 1)).collect();
    let probe: Vec<u64> = keys.iter().step_by(173).copied().collect();
    for choice in [IndexChoice::BTree, IndexChoice::HybridPla, IndexChoice::HybridModelTree] {
        let disk = Disk::in_memory(DiskConfig::with_block_size(4096).device(DeviceModel::none()));
        let mut index = choice.build(disk);
        index.bulk_load(&entries).unwrap();
        group.bench_function(BenchmarkId::new("lookup", choice.name()), |b| {
            let mut i = 0;
            b.iter(|| {
                let k = probe[i % probe.len()];
                i += 1;
                index.lookup(k).unwrap()
            })
        });
        let mut out = Vec::with_capacity(128);
        group.bench_function(BenchmarkId::new("scan100", choice.name()), |b| {
            let mut i = 0;
            b.iter(|| {
                let k = probe[i % probe.len()];
                i += 1;
                index.scan(k, 100, &mut out).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_memory_resident_inner(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_memory_resident_inner");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let keys = Dataset::Osm.generate_keys(50_000, 0x515);
    let entries: Vec<_> = keys.iter().map(|&k| (k, k + 1)).collect();
    let probe: Vec<u64> = keys.iter().step_by(173).copied().collect();
    for choice in [IndexChoice::BTree, IndexChoice::Fiting, IndexChoice::Pgm, IndexChoice::Alex] {
        let disk = Disk::in_memory(
            DiskConfig::with_block_size(4096)
                .device(DeviceModel::none())
                .memory_resident(&[BlockKind::Inner, BlockKind::Meta]),
        );
        let mut index = choice.build(disk);
        index.bulk_load(&entries).unwrap();
        group.bench_function(choice.name(), |b| {
            let mut i = 0;
            b.iter(|| {
                let k = probe[i % probe.len()];
                i += 1;
                index.lookup(k).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hybrids, bench_memory_resident_inner);
criterion_main!(benches);
