//! The zero-copy + batched read path on buffer-hit workloads.
//!
//! Two claims of the pinned-block refactor are measured here, both on a
//! buffer pool large enough to hold the whole index (so device cost is zero
//! and per-lookup CPU/allocator overhead is all that remains):
//!
//! 1. **Zero-copy pool hits** — `Disk::read_ref` serves a pool hit as one
//!    `Arc` clone, while the legacy `Disk::read_vec` pays an allocation plus
//!    a block copy per hit. The `pinned_vs_copy` group compares them on the
//!    same hot block.
//! 2. **Batched lookups beat N sequential lookups** — `lookup_batch` sorts
//!    the probe keys and walks shared inner blocks / leaf decodes once per
//!    run, so a 64-key batch is cheaper than 64 one-key lookups. The
//!    `batched_lookups` group compares the two on the B+-tree and PGM
//!    (specialised overrides) plus a default-implementation index as the
//!    no-amortisation baseline.
//!
//! A wall-clock summary with the batch-vs-sequential speedup is printed
//! after the Criterion measurements; CI runs this bench as a smoke gate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_core::DiskIndex;
use lidx_experiments::runner::IndexChoice;
use lidx_storage::{BlockKind, Disk, DiskConfig};
use lidx_workloads::Dataset;

/// Probe keys issued per measured round (sequentially or in batches).
const LOOKUPS_PER_ROUND: usize = 256;
/// Keys per `lookup_batch` call in the batched configuration.
const BATCH: usize = 64;
/// Indexes covered: the two specialised overrides plus one index that uses
/// the default per-key loop (so the table shows what the override buys).
const CHOICES: [IndexChoice; 3] = [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::HybridPla];

/// A disk whose pool holds the entire working set: every measured read is a
/// buffer hit and the bench isolates CPU/copy overhead.
fn warm_disk() -> Arc<Disk> {
    Disk::in_memory(DiskConfig::with_block_size(4096).buffer_blocks(4096))
}

fn loaded(choice: IndexChoice) -> (Box<dyn DiskIndex>, Vec<u64>) {
    let keys = Dataset::Ycsb.generate_keys(50_000, 0xBA7C);
    let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k + 1)).collect();
    let mut index = choice.build(warm_disk());
    index.bulk_load(&entries).expect("bulk load");
    // Warm the pool with one pass so measured rounds are all hits.
    let probe: Vec<u64> = keys.iter().step_by(97).copied().collect();
    for &k in &probe {
        index.lookup(k).expect("warm lookup");
    }
    (index, probe)
}

fn sequential_round(index: &dyn DiskIndex, probe: &[u64], round_no: usize) {
    let base = round_no * LOOKUPS_PER_ROUND;
    for i in 0..LOOKUPS_PER_ROUND {
        let k = probe[(base + i) % probe.len()];
        black_box(index.lookup(k).expect("lookup"));
    }
}

fn batched_round(
    index: &dyn DiskIndex,
    probe: &[u64],
    round_no: usize,
    out: &mut Vec<Option<u64>>,
) {
    let base = round_no * LOOKUPS_PER_ROUND;
    let mut chunk = [0u64; BATCH];
    for c in 0..LOOKUPS_PER_ROUND / BATCH {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = probe[(base + c * BATCH + i) % probe.len()];
        }
        index.lookup_batch(&chunk, out).expect("lookup_batch");
        black_box(out.len());
    }
}

/// Claim 1: a pool hit through `read_ref` (Arc clone) vs `read_vec`
/// (allocation + block copy) on the same cached block.
fn bench_pinned_vs_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("pinned_vs_copy");
    group.warm_up_time(Duration::from_millis(150));
    group.measurement_time(Duration::from_millis(600));
    let disk = warm_disk();
    let file = disk.create_file().unwrap();
    disk.allocate(file, 4).unwrap();
    disk.write(file, 1, BlockKind::Leaf, &[7u8; 4096]).unwrap();
    disk.read_ref(file, 1, BlockKind::Leaf).unwrap();
    group.bench_function("read_ref_hit", |b| {
        b.iter(|| black_box(disk.read_ref(file, 1, BlockKind::Leaf).unwrap()))
    });
    group.bench_function("read_vec_hit", |b| {
        b.iter(|| black_box(disk.read_vec(file, 1, BlockKind::Leaf).unwrap()))
    });
    group.finish();
}

/// Claim 2: `LOOKUPS_PER_ROUND` buffer-hit lookups, sequential vs batched.
fn bench_batched_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_lookups");
    group.warm_up_time(Duration::from_millis(150));
    group.measurement_time(Duration::from_millis(800));
    for choice in CHOICES {
        let (index, probe) = loaded(choice);
        let mut round_no = 0;
        group.bench_function(BenchmarkId::new(choice.name(), "sequential"), |b| {
            b.iter(|| {
                sequential_round(&*index, &probe, round_no);
                round_no += 1;
            })
        });
        let mut out = Vec::with_capacity(BATCH);
        let mut round_no = 0;
        group.bench_function(BenchmarkId::new(choice.name(), format!("batch{BATCH}")), |b| {
            b.iter(|| {
                batched_round(&*index, &probe, round_no, &mut out);
                round_no += 1;
            })
        });
    }
    group.finish();
}

/// Prints per-lookup wall time for both modes and the batch speedup — the
/// acceptance signal for this bench (batched > 1.0x on the overridden
/// indexes).
fn batching_summary(_c: &mut Criterion) {
    eprintln!("  --- batched vs sequential summary (buffer-hit workload) ---");
    for choice in CHOICES {
        let (index, probe) = loaded(choice);
        const ROUNDS: usize = 24;
        sequential_round(&*index, &probe, 0);
        let t0 = Instant::now();
        for r in 1..=ROUNDS {
            sequential_round(&*index, &probe, r);
        }
        let seq_ns = t0.elapsed().as_nanos() as f64 / (ROUNDS * LOOKUPS_PER_ROUND) as f64;
        let mut out = Vec::with_capacity(BATCH);
        batched_round(&*index, &probe, 0, &mut out);
        let t0 = Instant::now();
        for r in 1..=ROUNDS {
            batched_round(&*index, &probe, r, &mut out);
        }
        let bat_ns = t0.elapsed().as_nanos() as f64 / (ROUNDS * LOOKUPS_PER_ROUND) as f64;
        eprintln!(
            "  {:>12}: sequential {:>8.0} ns/lookup | batch{} {:>8.0} ns/lookup | {:.2}x",
            choice.name(),
            seq_ns,
            BATCH,
            bat_ns,
            seq_ns / bat_ns
        );
    }
}

criterion_group!(benches, bench_pinned_vs_copy, bench_batched_lookups, batching_summary);
criterion_main!(benches);
