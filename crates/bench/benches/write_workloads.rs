//! Fig. 5 / Fig. 6 / Fig. 9 — write and mixed workload performance.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lidx_bench::{bench_disk, BENCH_INDEXES};
use lidx_experiments::runner::IndexChoice;
use lidx_workloads::Dataset;

/// One measured iteration = bulk load 10k keys and insert 1k fresh keys.
fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_write_only");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for dataset in [Dataset::Ycsb, Dataset::Fb] {
        let keys = dataset.generate_keys(20_000, 0xFEED);
        let bulk: Vec<_> = keys.iter().step_by(2).map(|&k| (k, k + 1)).collect();
        let inserts: Vec<_> = keys.iter().skip(1).step_by(20).map(|&k| (k, k + 1)).collect();
        for choice in BENCH_INDEXES {
            group.bench_function(BenchmarkId::new(choice.name(), dataset.name()), |b| {
                b.iter_batched(
                    || {
                        let mut index = choice.build(bench_disk(4096));
                        index.bulk_load(&bulk).unwrap();
                        index
                    },
                    |mut index| {
                        for &(k, v) in &inserts {
                            index.insert(k, v).unwrap();
                        }
                        index
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// Balanced workload: alternating lookups and inserts (Fig. 5(d)).
fn bench_balanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_balanced");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let dataset = Dataset::Osm;
    let keys = dataset.generate_keys(20_000, 0xFEED);
    let bulk: Vec<_> = keys.iter().step_by(2).map(|&k| (k, k + 1)).collect();
    let fresh: Vec<u64> = keys.iter().skip(1).step_by(40).copied().collect();
    for choice in [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::Alex] {
        group.bench_function(choice.name(), |b| {
            b.iter_batched(
                || {
                    let mut index = choice.build(bench_disk(4096));
                    index.bulk_load(&bulk).unwrap();
                    index
                },
                |mut index| {
                    for (i, &k) in fresh.iter().enumerate() {
                        if i % 2 == 0 {
                            index.insert(k, k + 1).unwrap();
                        } else {
                            index.lookup(bulk[i % bulk.len()].0).unwrap();
                        }
                    }
                    index
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_balanced);
criterion_main!(benches);
