//! Fig. 13 — impact of an LRU buffer pool on lookup cost, plus a
//! micro-benchmark of the pool itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_experiments::runner::IndexChoice;
use lidx_storage::{BufferPool, DeviceModel, Disk, DiskConfig};
use lidx_workloads::{Dataset, Workload, WorkloadKind, WorkloadSpec};

fn bench_buffered_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_buffer_size");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let keys = Dataset::Fb.generate_keys(50_000, 0xB0F);
    let workload = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 200, 0));
    for buffer_blocks in [0usize, 8, 64] {
        for choice in [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::Lipp] {
            let disk = Disk::in_memory(
                DiskConfig::with_block_size(4096)
                    .device(DeviceModel::none())
                    .buffer_blocks(buffer_blocks),
            );
            let mut index = choice.build(disk);
            index.bulk_load(&workload.bulk).unwrap();
            let probe: Vec<u64> = keys.iter().step_by(173).copied().collect();
            group.bench_function(
                BenchmarkId::new(choice.name(), format!("buf{buffer_blocks}")),
                |b| {
                    let mut i = 0;
                    b.iter(|| {
                        let k = probe[i % probe.len()];
                        i += 1;
                        index.lookup(k).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_pool_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool_micro");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let block = vec![0u8; 4096];
    group.bench_function("put_get_hit", |b| {
        let mut pool = BufferPool::new(128);
        for i in 0..128u32 {
            pool.put(0, i, &block);
        }
        let mut out = vec![0u8; 4096];
        let mut i = 0u32;
        b.iter(|| {
            let hit = pool.get(0, i % 128, &mut out);
            i += 1;
            hit
        })
    });
    group.bench_function("put_evicting", |b| {
        let mut pool = BufferPool::new(64);
        let mut i = 0u32;
        b.iter(|| {
            pool.put(0, i, &block);
            i += 1;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_buffered_lookups, bench_pool_micro);
criterion_main!(benches);
