//! Fig. 13 — impact of a buffer pool on lookup cost — plus micro-benchmarks
//! of the pool itself and of the scan-resistant replacement policies
//! (`DESIGN.md` §3.3).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_experiments::runner::IndexChoice;
use lidx_storage::{
    BufferPool, DeviceModel, Disk, DiskConfig, PoolConfig, PoolPartitions, ReplacementPolicy,
};
use lidx_workloads::{Dataset, Workload, WorkloadKind, WorkloadSpec};

fn bench_buffered_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_buffer_size");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let keys = Dataset::Fb.generate_keys(50_000, 0xB0F);
    let workload = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 200, 0));
    for buffer_blocks in [0usize, 8, 64] {
        for choice in [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::Lipp] {
            let disk = Disk::in_memory(
                DiskConfig::with_block_size(4096)
                    .device(DeviceModel::none())
                    .buffer_blocks(buffer_blocks),
            );
            let mut index = choice.build(disk);
            index.bulk_load(&workload.bulk).unwrap();
            let probe: Vec<u64> = keys.iter().step_by(173).copied().collect();
            group.bench_function(
                BenchmarkId::new(choice.name(), format!("buf{buffer_blocks}")),
                |b| {
                    let mut i = 0;
                    b.iter(|| {
                        let k = probe[i % probe.len()];
                        i += 1;
                        index.lookup(k).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_pool_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool_micro");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let block = vec![0u8; 4096];
    // The hit and (evicting) insert paths of every replacement policy, so a
    // policy's bookkeeping cost is visible next to the others'.
    for policy in ReplacementPolicy::ALL {
        group.bench_function(BenchmarkId::new("put_get_hit", policy.name()), |b| {
            let mut pool = BufferPool::with_config(PoolConfig::new(128).policy(policy));
            for i in 0..128u32 {
                pool.put(0, i, &block);
            }
            let mut out = vec![0u8; 4096];
            let mut i = 0u32;
            b.iter(|| {
                let hit = pool.get(0, i % 128, &mut out);
                i += 1;
                hit
            })
        });
        group.bench_function(BenchmarkId::new("put_evicting", policy.name()), |b| {
            let mut pool = BufferPool::with_config(PoolConfig::new(64).policy(policy));
            let mut i = 0u32;
            b.iter(|| {
                pool.put(0, i, &block);
                i += 1;
            })
        });
    }
    group.finish();
}

/// The §3.3 scenario as a wall-clock benchmark: hot lookups interleaved with
/// full-table scan passes over a pool far smaller than the table. The
/// interesting output is the per-policy gap (2Q serves the hot set from the
/// pool; strict LRU re-fetches it after every pass).
fn bench_scan_interference(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_resistance");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let keys = Dataset::Ycsb.generate_keys(40_000, 0x5CA7);
    let workload = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 1, 0));
    let hot: Vec<u64> = keys.iter().step_by(keys.len() / 32).copied().collect();
    for (label, policy, partitions) in [
        ("lru", ReplacementPolicy::Lru, PoolPartitions::Unified),
        ("clock", ReplacementPolicy::Clock, PoolPartitions::Unified),
        ("2q", ReplacementPolicy::TwoQ, PoolPartitions::Unified),
        ("lru+inner25", ReplacementPolicy::Lru, PoolPartitions::InnerReserved { percent: 25 }),
    ] {
        let disk = Disk::in_memory(
            DiskConfig::with_block_size(4096)
                .device(DeviceModel::none())
                .buffer_pool(PoolConfig::new(128).policy(policy).partitions(partitions)),
        );
        let mut index = IndexChoice::BTree.build(disk);
        index.bulk_load(&workload.bulk).unwrap();
        // Promote the hot set (two passes: admit, then re-reference).
        for _ in 0..2 {
            for &k in &hot {
                index.lookup(k).unwrap();
            }
        }
        let mut rows = Vec::new();
        group.bench_function(BenchmarkId::new("hot_lookups_vs_scan", label), |b| {
            b.iter(|| {
                index.scan_batch(&[(keys[0], keys.len())], &mut rows).unwrap();
                let mut found = 0u32;
                for &k in &hot {
                    found += u32::from(index.lookup(k).unwrap().is_some());
                }
                found
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buffered_lookups, bench_pool_micro, bench_scan_interference);
criterion_main!(benches);
