//! Micro-benchmarks of the substrate pieces: PLA segmentation, FMCD model
//! fitting, block codec, and the raw storage path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_models::{fit_fmcd, segment_keys, LinearModel};
use lidx_storage::{BlockKind, DeviceModel, Disk, DiskConfig};
use lidx_workloads::Dataset;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_models");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for dataset in [Dataset::Ycsb, Dataset::Fb] {
        let keys = dataset.generate_keys(100_000, 0x1);
        group.bench_function(BenchmarkId::new("pla_eps64", dataset.name()), |b| {
            b.iter(|| segment_keys(&keys, 64).len())
        });
        group.bench_function(BenchmarkId::new("fmcd", dataset.name()), |b| {
            b.iter(|| fit_fmcd(&keys, keys.len() * 2).conflict_degree)
        });
        group.bench_function(BenchmarkId::new("linear_fit", dataset.name()), |b| {
            b.iter(|| LinearModel::fit_keys(&keys).slope)
        });
    }
    group.finish();
}

fn bench_storage_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_storage");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    let disk = Disk::in_memory(DiskConfig::with_block_size(4096).device(DeviceModel::none()));
    let file = disk.create_file().unwrap();
    disk.allocate(file, 1024).unwrap();
    let block = vec![7u8; 4096];
    group.bench_function("write_block", |b| {
        let mut i = 0u32;
        b.iter(|| {
            disk.write(file, i % 1024, BlockKind::Leaf, &block).unwrap();
            i += 1;
        })
    });
    group.bench_function("read_block", |b| {
        let mut buf = vec![0u8; 4096];
        let mut i = 0u32;
        b.iter(|| {
            disk.read(file, (i * 37) % 1024, BlockKind::Leaf, &mut buf).unwrap();
            i += 1;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_storage_path);
criterion_main!(benches);
