//! Beyond the paper — read throughput behind the sharded serving router.
//!
//! The `sharded_serving` experiment target sweeps shard counts at serving
//! scale with a racing background writer; this bench isolates the *router*
//! cost and the stall-avoidance mechanism at micro scale. Four reader
//! threads drive scrambled-zipfian lookups through a `ShardedIndex` at 1,
//! 4 and 16 shards while one writer continuously stages and flushes fresh
//! keys, with the device cost model realised as blocking time. At one
//! shard every drain chunk pauses all readers; at sixteen, a drain pins
//! only the shard it lands on, so the per-iteration time dropping with the
//! shard count is the contention relief the router buys.
//!
//! A summary table of aggregate throughput and speedup vs one shard is
//! printed after the Criterion measurements.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidx_core::{
    DiskIndex, IndexRead, IndexWrite, ShardedIndex, ShardedIndexConfig, ShardedWriteBufferConfig,
};
use lidx_experiments::runner::IndexChoice;
use lidx_storage::{DeviceModel, Disk, DiskConfig};
use lidx_workloads::{Dataset, ScrambledZipfian};

/// Keys bulk-loaded across the router (split over however many shards).
const BULK_KEYS: usize = 50_000;
/// Total lookups per measured round, split across [`READERS`] threads.
const LOOKUPS_PER_ROUND: usize = 192;
/// Reader threads racing the background writer.
const READERS: usize = 4;
/// Shard counts swept by the bench.
const SHARD_SWEEP: [usize; 3] = [1, 4, 16];
/// Indexes covered (one per structural family keeps the sweep quick; the
/// `sharded_serving` experiment target sweeps all seven variants).
const CHOICES: [IndexChoice; 3] = [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::HybridPla];

fn sim_ssd_disk() -> Arc<Disk> {
    Disk::in_memory(
        DiskConfig::with_block_size(4096)
            .device(DeviceModel::custom("ssd-25us", 25_000, 30_000, 15_000))
            .simulate_latency(true),
    )
}

/// A loaded router plus the probe population and a writer key stream.
struct Serving {
    router: Arc<ShardedIndex<Box<dyn DiskIndex>>>,
    probe: Vec<u64>,
    fresh: Vec<u64>,
}

fn loaded(choice: IndexChoice, shards: usize) -> Serving {
    let keys = Dataset::Ycsb.generate_keys(BULK_KEYS + BULK_KEYS / 4, 0xC0C0);
    let (bulk_keys, fresh) = keys.split_at(BULK_KEYS);
    let mut bulk: Vec<(u64, u64)> = bulk_keys.iter().map(|&k| (k, k + 1)).collect();
    bulk.sort_unstable();
    bulk.dedup_by_key(|e| e.0);
    let config = ShardedIndexConfig {
        shards,
        buffer: ShardedWriteBufferConfig { capacity: 1024, drain: 64, shards: 4 },
    };
    let mut router = ShardedIndex::with_sampled_boundaries(
        Box::new(move || Ok(choice.build(sim_ssd_disk()))),
        config,
        bulk_keys,
    )
    .expect("build router");
    router.bulk_load(&bulk).expect("bulk load");
    let probe: Vec<u64> = bulk.iter().map(|&(k, _)| k).collect();
    let mut fresh: Vec<u64> = fresh.to_vec();
    fresh.sort_unstable();
    fresh.dedup();
    fresh.retain(|k| probe.binary_search(k).is_err());
    Serving { router: Arc::new(router), probe, fresh }
}

/// One measured round: `LOOKUPS_PER_ROUND` zipfian lookups split across
/// [`READERS`] threads while the caller-supplied writer keeps draining.
fn round(s: &Serving, zipf: &ScrambledZipfian, round_no: usize) {
    let per_thread = LOOKUPS_PER_ROUND / READERS;
    std::thread::scope(|scope| {
        for t in 0..READERS {
            let router = Arc::clone(&s.router);
            let probe = &s.probe;
            scope.spawn(move || {
                let mut rng = ((0x5EED_0000 + round_no as u64) << 8) | t as u64;
                for _ in 0..per_thread {
                    rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = rng;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
                    let k = probe[zipf.position(u)];
                    router.lookup(k).expect("lookup");
                }
            });
        }
    });
}

/// Spawns the background writer: stages chunks of fresh keys and flushes
/// (draining into shard indexes under the device cost model) until stopped.
fn with_writer<R>(s: &Serving, body: impl FnOnce() -> R) -> R {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let router = Arc::clone(&s.router);
        let fresh = &s.fresh;
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut at = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let chunk: Vec<(u64, u64)> =
                    fresh.iter().cycle().skip(at).take(64).map(|&k| (k, k + 1)).collect();
                at = (at + 64) % fresh.len().max(1);
                router.stage_batch(&chunk).expect("stage");
                router.flush().expect("flush");
            }
        });
        let out = body();
        stop.store(true, Ordering::Relaxed);
        out
    })
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_serving");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1200));
    for choice in CHOICES {
        for shards in SHARD_SWEEP {
            let s = loaded(choice, shards);
            let zipf = ScrambledZipfian::new(s.probe.len(), 0.99);
            let mut round_no = 0;
            with_writer(&s, || {
                group.bench_function(BenchmarkId::new(choice.name(), format!("s{shards}")), |b| {
                    b.iter(|| {
                        round(&s, &zipf, round_no);
                        round_no += 1;
                    })
                });
            });
        }
    }
    group.finish();
}

/// Prints aggregate lookups/second and the speedup over one shard, the
/// micro-scale echo of the `sharded_serving` acceptance signal (>=3x at
/// 16 shards under zipfian reads).
fn scaling_summary(_c: &mut Criterion) {
    eprintln!("  --- aggregate throughput summary (simulated 25us SSD, {READERS} readers) ---");
    for choice in CHOICES {
        let mut base = 0.0f64;
        for shards in SHARD_SWEEP {
            let s = loaded(choice, shards);
            let zipf = ScrambledZipfian::new(s.probe.len(), 0.99);
            const ROUNDS: usize = 8;
            let secs = with_writer(&s, || {
                // One untimed warm round, then a few timed ones.
                round(&s, &zipf, 0);
                let t0 = Instant::now();
                for r in 1..=ROUNDS {
                    round(&s, &zipf, r);
                }
                t0.elapsed().as_secs_f64()
            });
            let ops_per_sec = (ROUNDS * LOOKUPS_PER_ROUND) as f64 / secs;
            if shards == 1 {
                base = ops_per_sec;
            }
            eprintln!(
                "  {:>12} s{:<2}: {:>10.0} ops/s  ({:.2}x vs 1 shard)",
                choice.name(),
                shards,
                ops_per_sec,
                ops_per_sec / base
            );
        }
    }
}

criterion_group!(benches, bench_shard_scaling, scaling_summary);
criterion_main!(benches);
