//! Fig. 7 / Fig. 10 — bulk-load cost and resulting index size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lidx_bench::{bench_disk, BENCH_INDEXES};
use lidx_workloads::Dataset;

fn bench_bulkload(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_bulkload");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    for dataset in Dataset::REPRESENTATIVE {
        let entries = dataset.generate(30_000, 0xABBA);
        for choice in BENCH_INDEXES {
            group.bench_function(BenchmarkId::new(choice.name(), dataset.name()), |b| {
                b.iter_batched(
                    || choice.build(bench_disk(4096)),
                    |mut index| {
                        index.bulk_load(&entries).unwrap();
                        index.storage_blocks()
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bulkload);
criterion_main!(benches);
