//! FMCD — the "Fastest Minimum Conflict Degree" model search used by LIPP.
//!
//! LIPP builds each node by choosing a linear model over the node's keys so
//! that, when every key is mapped to one of `m` slots, the *conflict degree*
//! (the maximum number of keys landing in the same slot) is as small as
//! possible. Keys that end up alone in a slot are stored inline (`DATA`
//! slots); conflicting keys are pushed down into a child node (`NODE` slots).
//!
//! The original FMCD algorithm (Algorithm 2 of the LIPP paper) searches for a
//! model by considering prefixes of the sorted key array and tolerating an
//! increasing conflict threshold. We implement the same idea as a bounded
//! search over quantile-anchored candidate models, which matches FMCD's
//! behaviour on the distributions used in the evaluation: near-linear data
//! gets conflict degree close to 1, heavily clustered data gets a large
//! conflict degree (Table 3).

use lidx_core::Key;

use crate::linear::LinearModel;

/// A model selected by [`fit_fmcd`] together with its quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmcdModel {
    /// The selected linear model mapping keys to slot positions in `[0, slots)`.
    pub model: LinearModel,
    /// Number of slots the model targets.
    pub slots: usize,
    /// The conflict degree achieved on the training keys.
    pub conflict_degree: usize,
}

/// Computes the conflict degree of mapping `keys` through `model` into
/// `slots` slots: the maximum number of keys assigned to one slot.
pub fn conflict_degree(keys: &[Key], model: &LinearModel, slots: usize) -> usize {
    if keys.is_empty() || slots == 0 {
        return 0;
    }
    let mut max_run = 1usize;
    let mut run = 1usize;
    let mut prev_slot = model.predict_clamped(keys[0], slots);
    for &k in &keys[1..] {
        let slot = model.predict_clamped(k, slots);
        if slot == prev_slot {
            run += 1;
            max_run = max_run.max(run);
        } else {
            run = 1;
            prev_slot = slot;
        }
    }
    max_run
}

/// Fits an FMCD-style model for `keys` over `slots` slots.
///
/// Candidate models are anchored at symmetric quantile pairs (FMCD's
/// "conservative" endpoints) plus a least-squares fit; the candidate with the
/// smallest conflict degree wins, ties broken towards the wider anchor span.
///
/// # Panics
/// Panics if `slots == 0` and `keys` is non-empty.
pub fn fit_fmcd(keys: &[Key], slots: usize) -> FmcdModel {
    if keys.is_empty() {
        return FmcdModel { model: LinearModel::ZERO, slots, conflict_degree: 0 };
    }
    assert!(slots > 0, "FMCD requires at least one slot");
    if keys.len() == 1 {
        return FmcdModel { model: LinearModel::ZERO, slots, conflict_degree: 1 };
    }

    let n = keys.len();
    let mut best: Option<FmcdModel> = None;
    let mut consider = |model: LinearModel| {
        let cd = conflict_degree(keys, &model, slots);
        if best.is_none_or(|b| cd < b.conflict_degree) {
            best = Some(FmcdModel { model, slots, conflict_degree: cd });
        }
    };

    // Quantile-anchored candidates: map keys[q] -> q/n * slots for symmetric
    // quantile pairs, mirroring FMCD's endpoint-relaxation iterations.
    let fractions = [0usize, n / 64, n / 16, n / 8, n / 4];
    for &f in &fractions {
        let lo = f.min(n - 2);
        let hi = (n - 1 - f).max(lo + 1);
        let p_lo = lo as f64 / (n - 1) as f64 * (slots - 1) as f64;
        let p_hi = hi as f64 / (n - 1) as f64 * (slots - 1) as f64;
        if keys[hi] > keys[lo] {
            consider(LinearModel::from_points(keys[lo], p_lo, keys[hi], p_hi));
        }
    }

    // Least-squares candidate, rescaled from array positions to slots.
    let ls = LinearModel::fit_keys(keys).rescale(n, slots);
    consider(ls);

    best.expect("at least one candidate model is always considered")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_have_minimal_conflicts() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 1000).collect();
        let m = fit_fmcd(&keys, keys.len() * 2);
        assert!(
            m.conflict_degree <= 2,
            "near-uniform data should have tiny conflict degree, got {}",
            m.conflict_degree
        );
    }

    #[test]
    fn clustered_keys_have_large_conflicts() {
        // 100 tight clusters of 100 keys each, clusters very far apart: any
        // linear model maps whole clusters into single slots.
        let mut keys = Vec::new();
        for c in 0..100u64 {
            for i in 0..100u64 {
                keys.push(c * 1_000_000_000 + i);
            }
        }
        let m = fit_fmcd(&keys, keys.len() * 2);
        assert!(
            m.conflict_degree >= 50,
            "clustered data must exhibit a large conflict degree, got {}",
            m.conflict_degree
        );
    }

    #[test]
    fn conflict_degree_counts_the_worst_slot() {
        let keys = [10u64, 11, 12, 1000, 2000];
        // Model mapping everything below 100 to slot 0.
        let model = LinearModel::new(0.001, 0.0);
        assert_eq!(conflict_degree(&keys, &model, 10), 3);
        assert_eq!(conflict_degree(&[], &model, 10), 0);
        assert_eq!(conflict_degree(&keys, &model, 0), 0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(fit_fmcd(&[], 16).conflict_degree, 0);
        let single = fit_fmcd(&[77], 16);
        assert_eq!(single.conflict_degree, 1);
        let two = fit_fmcd(&[1, 2], 8);
        assert!(two.conflict_degree <= 2);
    }

    #[test]
    fn more_slots_never_hurt_much() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| (i * i) % 1_000_003 + i * 17).collect();
        let mut sorted = keys;
        sorted.sort_unstable();
        sorted.dedup();
        let small = fit_fmcd(&sorted, sorted.len());
        let big = fit_fmcd(&sorted, sorted.len() * 4);
        assert!(
            big.conflict_degree <= small.conflict_degree,
            "quadrupling the slots must not increase the conflict degree ({} -> {})",
            small.conflict_degree,
            big.conflict_degree
        );
    }
}
