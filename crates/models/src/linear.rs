//! The linear `key -> position` model used by every learned index studied.

use lidx_core::Key;

/// A linear model `position ≈ slope * key + intercept`.
///
/// Positions are real-valued during prediction and clamped to an array range
/// by the caller via [`LinearModel::predict_clamped`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Slope of the model (positions per key unit).
    pub slope: f64,
    /// Intercept of the model (position at key 0).
    pub intercept: f64,
}

impl LinearModel {
    /// A model that maps every key to position 0 (used for empty or
    /// single-key nodes).
    pub const ZERO: LinearModel = LinearModel { slope: 0.0, intercept: 0.0 };

    /// Creates a model from slope and intercept.
    pub fn new(slope: f64, intercept: f64) -> Self {
        LinearModel { slope, intercept }
    }

    /// Builds the model passing through two `(key, position)` points.
    ///
    /// If both keys are equal the slope is zero and the intercept is the
    /// first position.
    pub fn from_points(k0: Key, p0: f64, k1: Key, p1: f64) -> Self {
        if k1 == k0 {
            return LinearModel { slope: 0.0, intercept: p0 };
        }
        let slope = (p1 - p0) / (k1 as f64 - k0 as f64);
        let intercept = p0 - slope * k0 as f64;
        LinearModel { slope, intercept }
    }

    /// Least-squares fit over `(key, position)` pairs where the position of
    /// `keys[i]` is `i`. This is how ALEX trains node models.
    pub fn fit_keys(keys: &[Key]) -> Self {
        match keys.len() {
            0 => LinearModel::ZERO,
            1 => LinearModel { slope: 0.0, intercept: 0.0 },
            _ => {
                let n = keys.len() as f64;
                // Shift keys by the first key (in integer space, before the
                // f64 conversion) to keep the sums well conditioned.
                let base = keys[0];
                let mut sx = 0.0;
                let mut sy = 0.0;
                let mut sxx = 0.0;
                let mut sxy = 0.0;
                for (i, &k) in keys.iter().enumerate() {
                    let x = (k - base) as f64;
                    let y = i as f64;
                    sx += x;
                    sy += y;
                    sxx += x * x;
                    sxy += x * y;
                }
                let denom = n * sxx - sx * sx;
                if denom.abs() < f64::EPSILON {
                    // All keys identical (cannot happen with strictly
                    // increasing input, but stay defensive).
                    return LinearModel { slope: 0.0, intercept: 0.0 };
                }
                let slope = (n * sxy - sx * sy) / denom;
                let intercept_shifted = (sy - slope * sx) / n;
                LinearModel { slope, intercept: intercept_shifted - slope * base as f64 }
            }
        }
    }

    /// Predicts a (real-valued) position for `key`.
    #[inline]
    pub fn predict(&self, key: Key) -> f64 {
        self.slope * key as f64 + self.intercept
    }

    /// Predicts a position and clamps it into `[0, len - 1]` (returns 0 for
    /// an empty range).
    #[inline]
    pub fn predict_clamped(&self, key: Key, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let p = self.predict(key);
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(len - 1)
        }
    }

    /// Rescales the model so that positions in `[0, old_len)` map to
    /// `[0, new_len)`. Used when ALEX expands a gapped array.
    #[must_use]
    pub fn rescale(&self, old_len: usize, new_len: usize) -> Self {
        if old_len == 0 {
            return *self;
        }
        let f = new_len as f64 / old_len as f64;
        LinearModel { slope: self.slope * f, intercept: self.intercept * f }
    }

    /// Maximum absolute prediction error over keys whose true position is
    /// their index in `keys`.
    pub fn max_error(&self, keys: &[Key]) -> f64 {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (self.predict(k) - i as f64).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_interpolates_exactly() {
        let m = LinearModel::from_points(10, 0.0, 110, 100.0);
        assert!((m.predict(10) - 0.0).abs() < 1e-9);
        assert!((m.predict(110) - 100.0).abs() < 1e-9);
        assert!((m.predict(60) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn from_points_degenerate_keys() {
        let m = LinearModel::from_points(5, 3.0, 5, 9.0);
        assert_eq!(m.slope, 0.0);
        assert_eq!(m.predict(123), 3.0);
    }

    #[test]
    fn fit_keys_recovers_a_perfect_line() {
        let keys: Vec<u64> = (0..100).map(|i| 1000 + 7 * i).collect();
        let m = LinearModel::fit_keys(&keys);
        assert!(m.max_error(&keys) < 1e-6, "perfectly linear data must fit exactly");
        assert!((m.slope - 1.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn fit_keys_small_inputs() {
        assert_eq!(LinearModel::fit_keys(&[]), LinearModel::ZERO);
        let m = LinearModel::fit_keys(&[42]);
        assert_eq!(m.predict_clamped(42, 1), 0);
    }

    #[test]
    fn predict_clamped_stays_in_bounds() {
        let m = LinearModel::new(1.0, -5.0);
        assert_eq!(m.predict_clamped(0, 10), 0, "negative predictions clamp to zero");
        assert_eq!(m.predict_clamped(100, 10), 9, "large predictions clamp to len-1");
        assert_eq!(m.predict_clamped(7, 10), 2);
        assert_eq!(m.predict_clamped(7, 0), 0);
    }

    #[test]
    fn rescale_doubles_positions() {
        let m = LinearModel::new(0.5, 10.0);
        let r = m.rescale(100, 200);
        assert!((r.predict(20) - 2.0 * m.predict(20)).abs() < 1e-9);
        let same = m.rescale(0, 50);
        assert_eq!(same, m);
    }

    #[test]
    fn fit_keys_handles_huge_keys_without_precision_blowup() {
        // Keys near 2^52: large enough to break a naive unshifted fit, small
        // enough that every key is still exactly representable as an f64
        // (required for the prediction itself to be meaningful).
        let base = 1u64 << 52;
        let keys: Vec<u64> = (0..1000).map(|i| base + 10 * i).collect();
        let m = LinearModel::fit_keys(&keys);
        assert!(m.max_error(&keys) < 1.0, "shifted fit must stay accurate for huge keys");
    }
}
