//! Learned-model toolbox shared by the learned-index implementations.
//!
//! Every index studied in the paper models data with *linear functions*
//! (§5.1): FITing-tree and PGM fit piecewise-linear approximations with a
//! bounded prediction error, ALEX fits per-node linear CDF models, and LIPP
//! searches for a linear model minimising slot conflicts (FMCD). This crate
//! implements those building blocks once:
//!
//! * [`linear::LinearModel`] — a `position ≈ slope · key + intercept` model.
//! * [`pla`] — error-bounded piecewise-linear segmentation using the
//!   shrinking-cone streaming algorithm (the FITing-tree greedy method; the
//!   paper's on-disk FITing-tree adopts the same streaming approach PGM uses,
//!   §4.2).
//! * [`fmcd`] — the Fastest Minimum Conflict Degree model search used by
//!   LIPP, plus the conflict-degree metric reported in Table 3.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fmcd;
pub mod linear;
pub mod pla;

pub use fmcd::{conflict_degree, fit_fmcd, FmcdModel};
pub use linear::LinearModel;
pub use pla::{segment_keys, Segment, ShrinkingCone};
