//! Error-bounded piecewise-linear segmentation.
//!
//! Both FITing-tree and PGM partition a sorted key array into *segments*,
//! each covered by a linear model whose prediction error is at most a
//! configurable bound ε. The classic streaming method is the *shrinking
//! cone*: anchor a segment at its first key and keep a feasible slope
//! interval `[slope_lo, slope_hi]`; every new key narrows the interval, and
//! when it becomes empty the segment is closed and a new one starts. This is
//! the FITing-tree "greedy" algorithm and a constant-factor approximation of
//! the optimal PLA used by PGM; the on-disk FITing-tree in the paper adopts
//! the same streaming approach as PGM (§4.2).
//!
//! The segment count this produces is the "hardness" metric of Table 3: data
//! that needs more segments under the same ε is harder to model linearly.

use lidx_core::Key;

use crate::linear::LinearModel;

/// One segment of a piecewise-linear approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First key covered by the segment.
    pub first_key: Key,
    /// Number of keys covered.
    pub len: usize,
    /// Index of the first covered key in the original array.
    pub start_index: usize,
    /// The model predicting *segment-relative* positions (position 0 is
    /// `first_key`).
    pub model: LinearModel,
}

impl Segment {
    /// Predicts the segment-relative position of `key`, clamped to the
    /// segment length.
    pub fn predict(&self, key: Key) -> usize {
        self.model.predict_clamped(key, self.len)
    }
}

/// Streaming shrinking-cone segmenter with error bound ε.
///
/// Feed keys in strictly increasing order with [`ShrinkingCone::push`];
/// completed segments are returned as they close, and [`ShrinkingCone::finish`]
/// flushes the final one.
#[derive(Debug)]
pub struct ShrinkingCone {
    epsilon: f64,
    /// Anchor key of the open segment.
    anchor: Option<Key>,
    anchor_index: usize,
    /// Number of keys in the open segment.
    count: usize,
    slope_lo: f64,
    slope_hi: f64,
    /// Total keys pushed so far (for start indexes).
    pushed: usize,
}

impl ShrinkingCone {
    /// Creates a segmenter with error bound `epsilon` (must be >= 1).
    pub fn new(epsilon: usize) -> Self {
        ShrinkingCone {
            epsilon: epsilon.max(1) as f64,
            anchor: None,
            anchor_index: 0,
            count: 0,
            slope_lo: 0.0,
            slope_hi: f64::INFINITY,
            pushed: 0,
        }
    }

    /// The error bound.
    pub fn epsilon(&self) -> usize {
        self.epsilon as usize
    }

    fn close(&mut self) -> Segment {
        let anchor = self.anchor.expect("close called with no open segment");
        let slope = if self.count <= 1 {
            0.0
        } else if self.slope_hi.is_finite() {
            0.5 * (self.slope_lo + self.slope_hi)
        } else {
            self.slope_lo
        };
        let model = LinearModel { slope, intercept: -slope * anchor as f64 };
        Segment { first_key: anchor, len: self.count, start_index: self.anchor_index, model }
    }

    /// Adds the next key (strictly larger than all previous keys). Returns a
    /// completed segment if this key could not be absorbed into the open one.
    pub fn push(&mut self, key: Key) -> Option<Segment> {
        let index = self.pushed;
        self.pushed += 1;
        let anchor = match self.anchor {
            None => {
                self.anchor = Some(key);
                self.anchor_index = index;
                self.count = 1;
                self.slope_lo = 0.0;
                self.slope_hi = f64::INFINITY;
                return None;
            }
            Some(a) => a,
        };

        debug_assert!(key > anchor, "keys must be strictly increasing");
        let dx = key as f64 - anchor as f64;
        let dy = self.count as f64; // segment-relative position of the new key

        // Feasible slopes so that |slope*dx - dy| <= epsilon.
        let lo = (dy - self.epsilon) / dx;
        let hi = (dy + self.epsilon) / dx;
        let new_lo = self.slope_lo.max(lo);
        let new_hi = self.slope_hi.min(hi);
        if new_lo <= new_hi {
            self.slope_lo = new_lo;
            self.slope_hi = new_hi;
            self.count += 1;
            None
        } else {
            let done = self.close();
            self.anchor = Some(key);
            self.anchor_index = index;
            self.count = 1;
            self.slope_lo = 0.0;
            self.slope_hi = f64::INFINITY;
            Some(done)
        }
    }

    /// Flushes the final open segment, if any.
    pub fn finish(mut self) -> Option<Segment> {
        self.anchor?;
        Some(self.close())
    }
}

/// Segments a strictly-increasing key array with error bound `epsilon`.
pub fn segment_keys(keys: &[Key], epsilon: usize) -> Vec<Segment> {
    let mut cone = ShrinkingCone::new(epsilon);
    let mut out = Vec::new();
    for &k in keys {
        if let Some(seg) = cone.push(k) {
            out.push(seg);
        }
    }
    if let Some(seg) = cone.finish() {
        out.push(seg);
    }
    out
}

/// Verifies that every key of `keys` is predicted within `epsilon` positions
/// by its covering segment. Returns the maximum observed error.
pub fn verify_segments(keys: &[Key], segments: &[Segment], epsilon: usize) -> Result<f64, String> {
    let mut max_err: f64 = 0.0;
    for seg in segments {
        for (rel, &k) in keys[seg.start_index..seg.start_index + seg.len].iter().enumerate() {
            let err = (seg.model.predict(k) - rel as f64).abs();
            max_err = max_err.max(err);
            if err > epsilon as f64 + 1e-6 {
                return Err(format!(
                    "key {k} in segment starting at {} predicted with error {err:.2} > ε = {epsilon}",
                    seg.first_key
                ));
            }
        }
    }
    Ok(max_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_data_needs_one_segment() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 13).collect();
        let segs = segment_keys(&keys, 16);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, keys.len());
        assert!(verify_segments(&keys, &segs, 16).is_ok());
    }

    #[test]
    fn error_bound_is_respected_on_irregular_data() {
        // Quadratic-ish gaps make the data hard for a single line.
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * i / 7 + i).collect();
        for eps in [4usize, 16, 64, 256] {
            let segs = segment_keys(&keys, eps);
            let covered: usize = segs.iter().map(|s| s.len).sum();
            assert_eq!(covered, keys.len(), "segments must cover every key exactly once");
            assert!(verify_segments(&keys, &segs, eps).is_ok(), "ε={eps} violated");
        }
    }

    #[test]
    fn larger_epsilon_never_needs_more_segments() {
        let keys: Vec<u64> = (0..20_000u64)
            .scan(0u64, |acc, i| {
                *acc += 1 + (i * 2_654_435_761u64) % 97;
                Some(*acc)
            })
            .collect();
        let mut last = usize::MAX;
        for eps in [8usize, 32, 128, 512] {
            let n = segment_keys(&keys, eps).len();
            assert!(n <= last, "ε={eps} produced {n} segments, more than a tighter bound");
            last = n;
        }
        assert!(last >= 1);
    }

    #[test]
    fn segment_start_indexes_are_contiguous() {
        let keys: Vec<u64> = (0..3_000u64).map(|i| i * i % 50_000 + i * 100).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let segs = segment_keys(&sorted, 8);
        let mut expect = 0usize;
        for s in &segs {
            assert_eq!(s.start_index, expect);
            assert_eq!(s.first_key, sorted[s.start_index]);
            expect += s.len;
        }
        assert_eq!(expect, sorted.len());
    }

    #[test]
    fn tiny_inputs() {
        assert!(segment_keys(&[], 16).is_empty());
        let one = segment_keys(&[42], 16);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len, 1);
        assert_eq!(one[0].predict(42), 0);
        let two = segment_keys(&[1, 1_000_000_000], 16);
        assert_eq!(two.len(), 1, "two points always fit one line");
    }
}
