//! Property tests for the learned-model toolbox: the piecewise-linear
//! segmentation must cover every key within its error bound for arbitrary
//! sorted inputs, and the FMCD conflict degree must be consistent with the
//! actual slot assignment.

use lidx_models::fmcd::{conflict_degree, fit_fmcd};
use lidx_models::pla::{segment_keys, verify_segments};
use lidx_models::LinearModel;
use proptest::prelude::*;

fn sorted_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::btree_set(0u64..1_000_000_000, 1..1_500)
        .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn segmentation_is_a_partition_with_bounded_error(
        keys in sorted_keys(),
        epsilon in 1usize..200,
    ) {
        let segments = segment_keys(&keys, epsilon);
        // Partition: contiguous, non-overlapping, covering every key.
        let covered: usize = segments.iter().map(|s| s.len).sum();
        prop_assert_eq!(covered, keys.len());
        let mut next = 0usize;
        for s in &segments {
            prop_assert_eq!(s.start_index, next);
            prop_assert_eq!(s.first_key, keys[s.start_index]);
            next += s.len;
        }
        // Error bound: checked exhaustively by verify_segments.
        prop_assert!(verify_segments(&keys, &segments, epsilon).is_ok());
    }

    #[test]
    fn larger_epsilon_is_never_worse(keys in sorted_keys()) {
        let tight = segment_keys(&keys, 8).len();
        let loose = segment_keys(&keys, 128).len();
        prop_assert!(loose <= tight);
    }

    #[test]
    fn fmcd_conflict_degree_is_achievable_and_consistent(
        keys in sorted_keys(),
        factor in 1usize..4,
    ) {
        let slots = keys.len() * factor + 1;
        let fitted = fit_fmcd(&keys, slots);
        // The reported conflict degree equals a recomputation with the same
        // model, and no linear interpolation between the extreme keys does
        // catastrophically better than the selected model.
        prop_assert_eq!(fitted.conflict_degree, conflict_degree(&keys, &fitted.model, slots));
        prop_assert!(fitted.conflict_degree >= 1);
        prop_assert!(fitted.conflict_degree <= keys.len());
        if keys.len() >= 2 {
            let naive = LinearModel::from_points(
                keys[0],
                0.0,
                keys[keys.len() - 1],
                (slots - 1) as f64,
            );
            let naive_cd = conflict_degree(&keys, &naive, slots);
            prop_assert!(
                fitted.conflict_degree <= naive_cd,
                "FMCD ({}) must not be worse than the endpoint model ({})",
                fitted.conflict_degree,
                naive_cd
            );
        }
    }

    #[test]
    fn linear_fit_predictions_are_monotonic(keys in sorted_keys()) {
        let model = LinearModel::fit_keys(&keys);
        let mut last = f64::NEG_INFINITY;
        for &k in &keys {
            let p = model.predict(k);
            prop_assert!(p >= last - 1e-9, "least-squares fit must be non-decreasing over sorted keys");
            last = p;
        }
    }
}
