//! The dynamic (LSM-style) PGM-index implementing
//! [`DiskIndex`](lidx_core::DiskIndex).
//!
//! New keys land in a small sorted *insert run* stored in its own file; when
//! the run fills up it is merged with the existing static components in the
//! classic logarithmic-method fashion: components occupy exponentially
//! growing "levels", and flushing the run merges it with every occupied level
//! from the smallest upwards until a free level is reached, where the merged
//! result is rebuilt as a fresh [`StaticPgm`]. Merged components release
//! their blocks (their files would be deleted on a real system), which is why
//! PGM's storage footprint stays the smallest of the studied indexes (§6.3).
//!
//! Reads must consult the insert run and then every component from newest
//! (smallest) to oldest — the multi-file read amplification the paper blames
//! for PGM's poor read-heavy performance (O10).

use std::sync::Arc;

use lidx_core::{
    index::validate_bulk_load, Entry, IndexError, IndexKind, IndexRead, IndexResult, IndexStats,
    IndexWrite, InsertBreakdown, InsertStep, Key, MetaReader, MetaWriter, Value,
};
use lidx_storage::{AccessClass, BlockKind, Disk, OpClass};

use crate::static_pgm::StaticPgm;

/// Configuration of the dynamic PGM-index.
#[derive(Debug, Clone, Copy)]
pub struct PgmConfig {
    /// Error bound ε of every component's piecewise-linear levels.
    pub epsilon: usize,
    /// Capacity of the sorted insert run, in entries. The paper's
    /// configuration holds 585 entries (≈ 3 blocks of 4 KB).
    pub insert_run_entries: usize,
}

impl Default for PgmConfig {
    fn default() -> Self {
        PgmConfig { epsilon: 64, insert_run_entries: 585 }
    }
}

/// The dynamic PGM-index.
pub struct PgmIndex {
    disk: Arc<Disk>,
    config: PgmConfig,
    /// File holding the sorted insert run.
    run_file: u32,
    run: u32,
    /// LSM levels; `levels[i]` (if present) holds roughly
    /// `insert_run_entries * 2^(i+1)` entries.
    levels: Vec<Option<StaticPgm>>,
    key_count: u64,
    smo_count: u64,
    loaded: bool,
    breakdown: InsertBreakdown,
}

const ENTRY_BYTES: usize = 16;

impl PgmIndex {
    /// Creates an empty dynamic PGM-index with default configuration.
    pub fn new(disk: Arc<Disk>) -> IndexResult<Self> {
        Self::with_config(disk, PgmConfig::default())
    }

    /// Creates an empty dynamic PGM-index with an explicit configuration.
    pub fn with_config(disk: Arc<Disk>, config: PgmConfig) -> IndexResult<Self> {
        assert!(config.epsilon >= 1);
        assert!(config.insert_run_entries >= 1);
        let run_file = disk.create_file()?;
        let run_blocks =
            (config.insert_run_entries * ENTRY_BYTES).div_ceil(disk.block_size()).max(1) as u32;
        disk.allocate(run_file, run_blocks)?;
        Ok(PgmIndex {
            disk,
            config,
            run_file,
            run: 0,
            levels: Vec::new(),
            key_count: 0,
            smo_count: 0,
            loaded: false,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// Reopens a dynamic PGM-index from [`IndexWrite::save_meta`] bytes
    /// against a disk that already holds its blocks. `config` must match the
    /// one the index was created with.
    pub fn load(disk: Arc<Disk>, config: PgmConfig, meta: &[u8]) -> IndexResult<Self> {
        let mut r = MetaReader::new(meta);
        let run_file = r.u32()?;
        let run = r.u32()?;
        let key_count = r.u64()?;
        let smo_count = r.u64()?;
        let level_count = r.u32()? as usize;
        let mut levels = Vec::with_capacity(level_count.min(64));
        for _ in 0..level_count {
            let occupied = r.u32()? != 0;
            levels.push(if occupied {
                Some(StaticPgm::load_meta(Arc::clone(&disk), &mut r)?)
            } else {
                None
            });
        }
        Ok(PgmIndex {
            disk,
            config,
            run_file,
            run,
            levels,
            key_count,
            smo_count,
            loaded: true,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// Number of live static components.
    pub fn component_count(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// Capacity of LSM level `i`, in entries.
    fn level_capacity(&self, i: usize) -> u64 {
        (self.config.insert_run_entries as u64) << (i + 1)
    }

    fn read_run(&self, class: AccessClass) -> IndexResult<Vec<Entry>> {
        if self.run == 0 {
            return Ok(Vec::new());
        }
        let bs = self.disk.block_size();
        let per_block = bs / ENTRY_BYTES;
        let blocks = (self.run as usize).div_ceil(per_block) as u32;
        let mut out = Vec::with_capacity(self.run as usize);
        for b in 0..blocks {
            let buf = self.disk.read_ref_class(self.run_file, b, BlockKind::Utility, class)?;
            let start = b as usize * per_block;
            let take = (self.run as usize - start).min(per_block);
            for slot in 0..take {
                let off = slot * ENTRY_BYTES;
                out.push((
                    Key::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
                    Value::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
                ));
            }
        }
        Ok(out)
    }

    fn write_run(&self, entries: &[Entry]) -> IndexResult<()> {
        let bs = self.disk.block_size();
        let per_block = bs / ENTRY_BYTES;
        let blocks = entries.len().div_ceil(per_block).max(1) as u32;
        let mut buf = vec![0u8; bs];
        for b in 0..blocks {
            buf.fill(0);
            for slot in 0..per_block {
                if let Some(&(k, v)) = entries.get(b as usize * per_block + slot) {
                    let off = slot * ENTRY_BYTES;
                    buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                }
            }
            self.disk.write(self.run_file, b, BlockKind::Utility, &buf)?;
        }
        Ok(())
    }

    /// Merges two sorted entry lists; on duplicate keys, `newer` wins.
    fn merge_entries(newer: Vec<Entry>, older: Vec<Entry>) -> (Vec<Entry>, u64) {
        let mut out = Vec::with_capacity(newer.len() + older.len());
        let mut duplicates = 0u64;
        let mut a = newer.into_iter().peekable();
        let mut b = older.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) => {
                    if x.0 < y.0 {
                        out.push(x);
                        a.next();
                    } else if x.0 > y.0 {
                        out.push(y);
                        b.next();
                    } else {
                        out.push(x);
                        a.next();
                        b.next();
                        duplicates += 1;
                    }
                }
                (Some(&x), None) => {
                    out.push(x);
                    a.next();
                }
                (None, Some(&y)) => {
                    out.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        (out, duplicates)
    }

    /// Flushes the insert run into the LSM levels (the PGM structural
    /// modification of Fig. 1(b)).
    fn flush_run(&mut self, run_entries: Vec<Entry>) -> IndexResult<()> {
        self.smo_count += 1;
        // The SMO is the learned-index pause the paper attributes tail
        // latency to: time the whole operation and count it, off a local
        // Arc so the span does not pin a borrow of `self`.
        let telemetry = Arc::clone(&self.disk);
        let _span = telemetry.telemetry().span(OpClass::Smo);
        telemetry.telemetry().add(OpClass::Smo, 1);
        let mut merged = run_entries;
        let mut target = 0usize;
        loop {
            if target >= self.levels.len() {
                self.levels.push(None);
            }
            match self.levels[target].take() {
                Some(component) => {
                    let older = component.all_entries()?;
                    component.release();
                    let (m, dupes) = Self::merge_entries(merged, older);
                    self.key_count -= dupes;
                    merged = m;
                }
                None => {
                    if merged.len() as u64 <= self.level_capacity(target) {
                        break;
                    }
                    // Level is empty but too small to hold the merge result;
                    // keep cascading upward.
                }
            }
            if merged.len() as u64 <= self.level_capacity(target) && self.levels[target].is_none() {
                break;
            }
            target += 1;
        }
        let component = StaticPgm::build(Arc::clone(&self.disk), &merged, self.config.epsilon)?;
        self.levels[target] = Some(component);
        self.run = 0;
        self.write_run(&[])?;
        Ok(())
    }
}

impl IndexRead for PgmIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Pgm
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        // Newest data first: the insert run, then components small to large.
        if self.run > 0 {
            let run = self.read_run(AccessClass::Point)?;
            if let Ok(pos) = run.binary_search_by_key(&key, |&(k, _)| k) {
                return Ok(Some(run[pos].1));
            }
        }
        for level in self.levels.iter().flatten() {
            if let Some(v) = level.lookup(key)? {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Batched lookups pay PGM's multi-component read amplification once per
    /// batch instead of once per key: the insert run is read a single time
    /// and probed in memory for every key, and each component only sees the
    /// keys that every newer component missed, with co-located sorted keys
    /// sharing one pinned data block ([`StaticPgm::lookup_batch_sorted`]).
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        if keys.is_empty() {
            return Ok(());
        }
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        out.resize(keys.len(), None);
        let mut pending: Vec<u32> = (0..keys.len() as u32).collect();
        pending.sort_unstable_by_key(|&i| keys[i as usize]);
        if self.run > 0 {
            let run = self.read_run(AccessClass::Point)?;
            pending.retain(|&i| match run.binary_search_by_key(&keys[i as usize], |&(k, _)| k) {
                Ok(pos) => {
                    out[i as usize] = Some(run[pos].1);
                    false
                }
                Err(_) => true,
            });
        }
        for level in self.levels.iter().flatten() {
            if pending.is_empty() {
                break;
            }
            level.lookup_batch_sorted(keys, &mut pending, out)?;
        }
        Ok(())
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        if count == 0 {
            return Ok(0);
        }
        // Collect `count` candidates from every component, then merge,
        // preferring newer components on duplicate keys. (Preallocation is
        // capped by the component size: full-table scans legitimately pass
        // huge sentinel counts.)
        let run = self.read_run(AccessClass::Scan)?;
        let mut merged: Vec<Entry> =
            run.into_iter().filter(|&(k, _)| k >= start).take(count).collect();
        for level in self.levels.iter().flatten() {
            let mut part = Vec::with_capacity(count.min(level.len() as usize));
            level.scan_into(start, count, &mut part)?;
            let (m, _) = Self::merge_entries(merged, part);
            merged = m;
        }
        merged.truncate(count);
        *out = merged;
        Ok(out.len())
    }

    fn len(&self) -> u64 {
        self.key_count
    }

    fn stats(&self) -> IndexStats {
        let height =
            self.levels.iter().flatten().map(|l| l.inner_levels() as u32 + 2).max().unwrap_or(1);
        IndexStats {
            keys: self.key_count,
            height,
            inner_nodes: self.levels.iter().flatten().map(|l| l.inner_records()).sum(),
            leaf_nodes: self.levels.iter().flatten().map(|l| u64::from(l.data_blocks())).sum(),
            smo_count: self.smo_count,
        }
    }

    fn storage_blocks(&self) -> u64 {
        // Merged components release their files, so PGM's live footprint is
        // the allocation minus what has been freed (§6.3).
        self.disk.total_blocks() - self.disk.stats().freed_blocks()
    }
}

impl IndexWrite for PgmIndex {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if self.loaded {
            return Err(IndexError::AlreadyLoaded);
        }
        validate_bulk_load(entries)?;
        // Place the bulk-loaded data in the smallest level large enough.
        let mut level = 0usize;
        while self.level_capacity(level) < entries.len() as u64 {
            level += 1;
        }
        while self.levels.len() <= level {
            self.levels.push(None);
        }
        let component = StaticPgm::build(Arc::clone(&self.disk), entries, self.config.epsilon)?;
        self.levels[level] = Some(component);
        self.key_count = entries.len() as u64;
        self.loaded = true;
        Ok(())
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let before = self.disk.snapshot();
        // PGM only searches the insert run on insert (the paper highlights
        // this as the reason for its write-only dominance, O6).
        let mut run = self.read_run(AccessClass::Point)?;
        let after_search = self.disk.snapshot();
        self.breakdown.add(InsertStep::Search, &after_search.since(&before));

        match run.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => run[pos].1 = value,
            Err(pos) => {
                run.insert(pos, (key, value));
                self.key_count += 1;
            }
        }
        if run.len() <= self.config.insert_run_entries {
            self.run = run.len() as u32;
            self.write_run(&run)?;
            let after_insert = self.disk.snapshot();
            self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
        } else {
            self.flush_run(run)?;
            let after_smo = self.disk.snapshot();
            self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
        }
        self.breakdown.finish_insert();
        Ok(())
    }

    /// Batched inserts append to the run in memory: the run blocks are read
    /// once per batch and the run is rewritten once at the end — where the
    /// sequential loop pays a run read and a run write *per key*. LSM
    /// flushes fire exactly when the sequential loop would fire them (the
    /// run crossing its capacity), so the logical outcome — including the
    /// lazily-reconciled key count, which depends on *when* duplicates meet
    /// the run — is identical to the per-key loop.
    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        if entries.is_empty() {
            return Ok(());
        }
        let before = self.disk.snapshot();
        let mut run = self.read_run(AccessClass::Point)?;
        let mut last = self.disk.snapshot();
        self.breakdown.add(InsertStep::Search, &last.since(&before));

        for &(key, value) in entries {
            match run.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(pos) => run[pos].1 = value,
                Err(pos) => {
                    run.insert(pos, (key, value));
                    self.key_count += 1;
                }
            }
            self.breakdown.finish_insert();
            if run.len() > self.config.insert_run_entries {
                self.flush_run(std::mem::take(&mut run))?;
                let after_smo = self.disk.snapshot();
                self.breakdown.add(InsertStep::Smo, &after_smo.since(&last));
                last = after_smo;
            }
        }
        // `flush_run` already persisted an empty run if it ran last.
        if !run.is_empty() {
            self.run = run.len() as u32;
            self.write_run(&run)?;
        }
        let after_insert = self.disk.snapshot();
        self.breakdown.add(InsertStep::Insert, &after_insert.since(&last));
        Ok(())
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        self.breakdown
    }

    fn save_meta(&mut self) -> IndexResult<Vec<u8>> {
        // The insert run and every component block are written eagerly, so
        // the handle fields plus each component's metadata are the whole
        // state.
        let mut w = MetaWriter::new();
        w.u32(self.run_file)
            .u32(self.run)
            .u64(self.key_count)
            .u64(self.smo_count)
            .u32(self.levels.len() as u32);
        for level in &self.levels {
            match level {
                Some(component) => {
                    w.u32(1);
                    component.save_meta(&mut w);
                }
                None => {
                    w.u32(0);
                }
            }
        }
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::DiskConfig;

    fn index(bs: usize, run: usize) -> PgmIndex {
        let disk = Disk::in_memory(DiskConfig::with_block_size(bs));
        PgmIndex::with_config(disk, PgmConfig { epsilon: 16, insert_run_entries: run }).unwrap()
    }

    fn entries(n: u64, stride: u64) -> Vec<Entry> {
        (0..n).map(|i| (i * stride + 1, i * stride + 2)).collect()
    }

    #[test]
    fn bulk_load_and_lookup() {
        let mut p = index(512, 64);
        let data = entries(20_000, 7);
        p.bulk_load(&data).unwrap();
        assert_eq!(p.len(), 20_000);
        assert_eq!(p.component_count(), 1);
        for &(k, v) in data.iter().step_by(487) {
            assert_eq!(p.lookup(k).unwrap(), Some(v));
        }
        assert_eq!(p.lookup(0).unwrap(), None);
        assert_eq!(p.lookup(data.last().unwrap().0 + 3).unwrap(), None);
    }

    #[test]
    fn inserts_flow_through_run_and_merge_into_components() {
        let mut p = index(512, 32);
        p.bulk_load(&entries(1_000, 10)).unwrap();
        for i in 0..500u64 {
            p.insert(i * 10 + 5, i).unwrap();
        }
        assert_eq!(p.len(), 1_500);
        assert!(p.stats().smo_count > 0, "run flushes must have happened");
        assert!(p.component_count() >= 1);
        for i in (0..500u64).step_by(41) {
            assert_eq!(p.lookup(i * 10 + 5).unwrap(), Some(i));
        }
        // Original keys remain visible after merges.
        for &(k, v) in entries(1_000, 10).iter().step_by(173) {
            assert_eq!(p.lookup(k).unwrap(), Some(v));
        }
    }

    #[test]
    fn insert_cost_is_dominated_by_the_run() {
        // Away from flush points, an insert touches only the run blocks.
        let mut p = index(4096, 585);
        p.bulk_load(&entries(100_000, 4)).unwrap();
        p.disk().stats().reset();
        p.disk().reset_access_state();
        let before = p.disk().snapshot();
        p.insert(3, 3).unwrap();
        let delta = p.disk().snapshot().since(&before);
        assert!(
            delta.total_io() <= 4,
            "a non-flushing PGM insert should touch at most a few run blocks, saw {}",
            delta.total_io()
        );
    }

    #[test]
    fn lookup_visits_components_newest_first() {
        let mut p = index(512, 16);
        p.bulk_load(&entries(2_000, 3)).unwrap();
        // Overwrite an existing key; the newer value must win even though the
        // older one still physically exists in the bulk component.
        p.insert(1, 999).unwrap();
        assert_eq!(p.lookup(1).unwrap(), Some(999));
        // Note: PGM does not search the whole index on insert (only the
        // run), so the duplicate is reconciled lazily at merge time.
        // Force enough flushes that the overwrite migrates into a component.
        for i in 0..200u64 {
            p.insert(1_000_000 + i, i).unwrap();
        }
        assert_eq!(p.lookup(1).unwrap(), Some(999));
    }

    #[test]
    fn scan_merges_run_and_components() {
        let mut p = index(512, 32);
        let data = entries(5_000, 4); // keys 1, 5, 9, ...
        p.bulk_load(&data).unwrap();
        for i in 0..100u64 {
            p.insert(i * 4 + 3, i).unwrap(); // interleaved keys 3, 7, 11, ...
        }
        let mut out = Vec::new();
        let n = p.scan(1, 150, &mut out).unwrap();
        assert_eq!(n, 150);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "scan output must be sorted");
        // The first few entries interleave bulk and inserted keys: 1,3,5,7,...
        assert_eq!(out[0].0, 1);
        assert_eq!(out[1].0, 3);
        assert_eq!(out[2].0, 5);
    }

    #[test]
    fn scan_boundary_cases_match_oracle() {
        let mut t = index(512, 32);
        let data = entries(1_200, 7);
        t.bulk_load(&data).unwrap();
        // Push some keys through the insert run so scans must merge
        // components at their boundaries too.
        for i in 0..50u64 {
            t.insert(i * 7 * 24 + 4, 42).unwrap();
        }
        let mut data: Vec<Entry> = data;
        for i in 0..50u64 {
            let k = i * 7 * 24 + 4;
            match data.binary_search_by_key(&k, |e| e.0) {
                Ok(p) => data[p].1 = 42,
                Err(p) => data.insert(p, (k, 42)),
            }
        }
        let mut out = Vec::new();

        // count == 0 returns nothing and clears `out`.
        out.push((1, 1));
        assert_eq!(t.scan(data[0].0, 0, &mut out).unwrap(), 0);
        assert!(out.is_empty());

        // Starts above the maximum stored key return nothing.
        let max_key = data.last().unwrap().0;
        for start in [max_key + 1, u64::MAX] {
            assert_eq!(t.scan(start, 10, &mut out).unwrap(), 0, "scan from {start}");
            assert!(out.is_empty());
        }

        // Scanning from every stored key covers every block / segment / node
        // boundary; each result must match the oracle slice exactly.
        for (i, &(k, _)) in data.iter().enumerate() {
            let n = t.scan(k, 5, &mut out).unwrap();
            let expected: Vec<Entry> = data[i..].iter().take(5).copied().collect();
            assert_eq!(n, expected.len(), "scan length from key {k}");
            assert_eq!(out, expected, "scan contents from key {k}");
        }
    }

    #[test]
    fn lookup_batch_matches_sequential_across_run_and_components() {
        let mut p = index(512, 32);
        let data = entries(5_000, 4);
        p.bulk_load(&data).unwrap();
        // Push keys through the run and past at least one flush so the batch
        // has to consult the run plus several components.
        for i in 0..90u64 {
            p.insert(i * 4 + 3, i).unwrap();
        }
        let probes: Vec<Key> = data
            .iter()
            .step_by(101)
            .map(|&(k, _)| k)
            .chain((0..90).map(|i| i * 4 + 3))
            .chain([0, 2, u64::MAX, data[7].0, data[7].0])
            .collect();
        let mut batched = Vec::new();
        p.lookup_batch(&probes, &mut batched).unwrap();
        for (i, &k) in probes.iter().enumerate() {
            assert_eq!(batched[i], p.lookup(k).unwrap(), "probe {k}");
        }

        // The batch reads the insert run once, not once per key, and shares
        // data blocks across co-located keys.
        let run: Vec<Key> = data[100..300].iter().map(|&(k, _)| k).collect();
        p.disk().stats().reset();
        p.disk().reset_access_state();
        p.lookup_batch(&run, &mut batched).unwrap();
        let batch_reads = p.disk().stats().reads();
        p.disk().stats().reset();
        p.disk().reset_access_state();
        for &k in &run {
            p.lookup(k).unwrap();
        }
        let seq_reads = p.disk().stats().reads();
        assert!(
            batch_reads * 2 < seq_reads,
            "batched reads ({batch_reads}) must amortise sequential reads ({seq_reads})"
        );
    }

    #[test]
    fn insert_batch_matches_sequential_with_one_run_rewrite() {
        let data = entries(3_000, 6);
        // After the reverse, (5, 900) is the later occurrence and must win.
        let mut batch: Vec<Entry> = (0..200u64).map(|i| (i * 18 + 4, i)).collect();
        batch.extend([(5, 900), (data[10].0, 901), (5, 902)]);
        batch.reverse();

        let mut batched = index(512, 64);
        batched.bulk_load(&data).unwrap();
        batched.insert_batch(&batch).unwrap();
        let mut sequential = index(512, 64);
        sequential.bulk_load(&data).unwrap();
        for &(k, v) in &batch {
            sequential.insert(k, v).unwrap();
        }
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(batched.lookup(5).unwrap(), Some(900), "later duplicate wins");
        assert_eq!(batched.lookup(data[10].0).unwrap(), Some(901));
        let full = (data.len() + batch.len()) * 2;
        let mut b_scan = Vec::new();
        let mut s_scan = Vec::new();
        batched.scan(0, full, &mut b_scan).unwrap();
        sequential.scan(0, full, &mut s_scan).unwrap();
        assert_eq!(b_scan, s_scan, "batched and sequential content must be identical");

        // A non-flushing batch reads and rewrites the run once, not per key:
        // 32 inserts into an empty run at 512-byte blocks touch exactly the
        // covering run block(s).
        let mut a = index(512, 64);
        a.bulk_load(&data).unwrap();
        a.disk().stats().reset();
        a.disk().reset_access_state();
        let run: Vec<Entry> = (0..32u64).map(|i| (i * 6 + 3, i)).collect();
        a.insert_batch(&run).unwrap();
        let io = a.disk().stats().reads() + a.disk().stats().writes();
        assert!(io <= 2, "a batch fitting the run should cost ~1 run write, saw {io} I/Os");
        assert_eq!(a.insert_breakdown().inserts, 32);

        // A batch overflowing the run flushes exactly when the sequential
        // loop would: 200 fresh keys into an empty 64-entry run cross the
        // capacity at inserts 65, 130 and 195.
        let smos_before = a.stats().smo_count;
        let big: Vec<Entry> = (0..200u64).map(|i| (1_000_000 + i, i)).collect();
        a.insert_batch(&big).unwrap();
        assert_eq!(a.stats().smo_count, smos_before + 3, "flush cadence must match sequential");

        let mut empty = index(512, 16);
        assert!(matches!(empty.insert_batch(&[(1, 1)]), Err(IndexError::NotInitialized)));
    }

    #[test]
    fn insert_batch_len_matches_sequential_when_a_duplicate_straddles_a_flush() {
        // Regression: a batch that overwrites key k, then fills the run past
        // capacity (forcing a flush), then overwrites k again. The sequential
        // loop counts k twice (the second occurrence misses the freshly
        // emptied run; the duplicate reconciles at the next merge), so the
        // batch must flush mid-loop to report the same length.
        let mut batch: Vec<Entry> = vec![(5, 1)];
        batch.extend((0..40u64).map(|i| (100 + i, i)));
        batch.push((5, 2));
        let mut batched = index(512, 32);
        batched.bulk_load(&[(1, 1), (2, 2)]).unwrap();
        batched.insert_batch(&batch).unwrap();
        let mut sequential = index(512, 32);
        sequential.bulk_load(&[(1, 1), (2, 2)]).unwrap();
        for &(k, v) in &batch {
            sequential.insert(k, v).unwrap();
        }
        assert_eq!(batched.len(), sequential.len(), "lazily-reconciled key counts must agree");
        assert_eq!(batched.lookup(5).unwrap(), Some(2));
        assert_eq!(sequential.lookup(5).unwrap(), Some(2));
    }

    #[test]
    fn storage_shrinks_after_merges_release_components() {
        let mut p = index(512, 16);
        p.bulk_load(&entries(2_000, 2)).unwrap();
        for i in 0..400u64 {
            p.insert(i * 2 + 2, i).unwrap();
        }
        let live = p.storage_blocks();
        let gross = p.disk().total_blocks();
        assert!(live < gross, "released component files must not count as live storage");
    }

    #[test]
    fn not_initialised_and_double_load_errors() {
        let mut p = index(512, 16);
        assert!(matches!(p.lookup(1), Err(IndexError::NotInitialized)));
        assert!(matches!(p.insert(1, 1), Err(IndexError::NotInitialized)));
        p.bulk_load(&entries(10, 1)).unwrap();
        assert!(matches!(p.bulk_load(&entries(10, 1)), Err(IndexError::AlreadyLoaded)));
    }

    #[test]
    fn empty_bulk_load_supports_inserts() {
        let mut p = index(512, 8);
        p.bulk_load(&[]).unwrap();
        for i in 0..100u64 {
            p.insert(i, i + 1).unwrap();
        }
        assert_eq!(p.len(), 100);
        for i in (0..100).step_by(11) {
            assert_eq!(p.lookup(i).unwrap(), Some(i + 1));
        }
        let mut out = Vec::new();
        assert_eq!(p.scan(50, 10, &mut out).unwrap(), 10);
        assert_eq!(out[0], (50, 51));
    }
}
