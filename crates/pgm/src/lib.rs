//! An on-disk PGM-index with LSM-style arbitrary inserts (§2.1 / §4.2).
//!
//! The PGM-index approximates the key → position mapping with a recursive
//! piecewise-linear approximation: the bottom level is the sorted data, the
//! level above is the set of ε-bounded segments over the data keys, and each
//! higher level segments the first keys of the level below until a single
//! root segment remains.
//!
//! Arbitrary inserts follow the LSM idea the paper describes (Fig. 1(b)):
//! new keys go to a small sorted insert run; when it fills up, it is merged
//! with the existing static PGM components of geometrically growing size,
//! producing a new component and *deleting* the merged ones (their files can
//! be reclaimed, which is why PGM has the smallest storage footprint in
//! §6.3). Lookups must consult the insert run and then every component from
//! newest to oldest — the multi-file read amplification behind observation
//! O10.
//!
//! Module layout: [`static_pgm`] implements one immutable component,
//! [`dynamic`] the LSM wrapper implementing [`lidx_core::DiskIndex`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dynamic;
pub mod static_pgm;

pub use dynamic::{PgmConfig, PgmIndex};
pub use static_pgm::StaticPgm;
