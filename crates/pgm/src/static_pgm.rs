//! One immutable PGM component: recursive ε-bounded piecewise-linear levels
//! over a dense sorted data array, all stored on disk.
//!
//! File layout (one file per component):
//!
//! ```text
//! [ data blocks         ]  (key u64, payload u64) pairs, sentinel padded
//! [ level-1 seg blocks  ]  records over data positions
//! [ level-2 seg blocks  ]  records over level-1 record indexes
//! ...
//! ```
//!
//! Each segment record is 28 bytes: `first_key u64, slope f64, start u64,
//! len u32`, predicting *absolute* positions within the level below. The
//! root level always has exactly one record, which is kept in memory with
//! the component's metadata (the paper's memory-resident meta block).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use lidx_core::{Entry, IndexError, IndexResult, Key, MetaReader, MetaWriter, Value};
use lidx_models::pla::segment_keys;
use lidx_models::LinearModel;
use lidx_storage::{AccessClass, BlockKind, BlockRef, Disk, SeqHint};

/// Size of one data entry in bytes.
const ENTRY_BYTES: usize = 16;
/// Size of one segment record in bytes.
const RECORD_BYTES: usize = 28;
/// Sentinel key used to pad unused slots.
const SENTINEL: Key = Key::MAX;

/// A segment record of an inner PGM level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegRecord {
    /// Smallest key covered by the segment.
    pub first_key: Key,
    /// Slope of the linear model (positions per key unit).
    pub slope: f64,
    /// Absolute start position of the covered range in the level below.
    pub start: u64,
    /// Number of covered positions in the level below.
    pub len: u32,
}

impl SegRecord {
    /// Predicts the absolute position of `key` in the level below, clamped to
    /// the record's range.
    pub fn predict(&self, key: Key) -> u64 {
        if self.len == 0 {
            return self.start;
        }
        let model =
            LinearModel { slope: self.slope, intercept: -self.slope * self.first_key as f64 };
        self.start + model.predict_clamped(key, self.len as usize) as u64
    }
}

/// Description of one on-disk level of segment records.
#[derive(Debug, Clone, Copy)]
struct LevelInfo {
    first_block: u32,
    records: u64,
}

/// One immutable PGM component.
pub struct StaticPgm {
    disk: Arc<Disk>,
    file: u32,
    epsilon: usize,
    /// Number of data entries.
    len: u64,
    data_blocks: u32,
    /// Inner levels, from the one directly above the data (index 0) upwards.
    levels: Vec<LevelInfo>,
    /// The single root record (memory-resident).
    root: SegRecord,
    /// Smallest and largest stored keys.
    min_key: Key,
    max_key: Key,
}

fn entries_per_block(block_size: usize) -> usize {
    block_size / ENTRY_BYTES
}

fn records_per_block(block_size: usize) -> usize {
    block_size / RECORD_BYTES
}

fn record_at(buf: &[u8], slot: usize) -> SegRecord {
    let off = slot * RECORD_BYTES;
    SegRecord {
        first_key: Key::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
        slope: f64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
        start: u64::from_le_bytes(buf[off + 16..off + 24].try_into().unwrap()),
        len: u32::from_le_bytes(buf[off + 24..off + 28].try_into().unwrap()),
    }
}

fn put_record(buf: &mut [u8], slot: usize, r: &SegRecord) {
    let off = slot * RECORD_BYTES;
    buf[off..off + 8].copy_from_slice(&r.first_key.to_le_bytes());
    buf[off + 8..off + 16].copy_from_slice(&r.slope.to_le_bytes());
    buf[off + 16..off + 24].copy_from_slice(&r.start.to_le_bytes());
    buf[off + 24..off + 28].copy_from_slice(&r.len.to_le_bytes());
}

fn entry_at(buf: &[u8], slot: usize) -> Entry {
    let off = slot * ENTRY_BYTES;
    (
        Key::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
        Value::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
    )
}

impl StaticPgm {
    /// Builds a component from sorted, strictly-increasing entries.
    ///
    /// A dedicated file is created on `disk`; all data and segment blocks are
    /// written immediately (this is the bulk-load / merge cost of Fig. 7).
    pub fn build(disk: Arc<Disk>, entries: &[Entry], epsilon: usize) -> IndexResult<Self> {
        let bs = disk.block_size();
        let file = disk.create_file()?;
        let per_block = entries_per_block(bs);
        let data_blocks = entries.len().div_ceil(per_block).max(1) as u32;
        let data_start = disk.allocate(file, data_blocks)?;
        debug_assert_eq!(data_start, 0);

        // Write the data level.
        let mut buf = vec![0u8; bs];
        for b in 0..data_blocks as usize {
            for slot in 0..per_block {
                let off = slot * ENTRY_BYTES;
                let (k, v) = entries.get(b * per_block + slot).copied().unwrap_or((SENTINEL, 0));
                buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
            }
            disk.write(file, data_start + b as u32, BlockKind::Leaf, &buf)?;
        }

        // Build the inner levels bottom-up.
        let mut levels = Vec::new();
        let mut keys: Vec<Key> = entries.iter().map(|&(k, _)| k).collect();
        let mut records: Vec<SegRecord> = if keys.is_empty() {
            vec![SegRecord { first_key: 0, slope: 0.0, start: 0, len: 0 }]
        } else {
            segment_keys(&keys, epsilon)
                .iter()
                .map(|s| SegRecord {
                    first_key: s.first_key,
                    slope: s.model.slope,
                    start: s.start_index as u64,
                    len: s.len as u32,
                })
                .collect()
        };

        let rec_per_block = records_per_block(bs);
        while records.len() > 1 {
            // Persist this level.
            let blocks = records.len().div_ceil(rec_per_block) as u32;
            let first_block = disk.allocate(file, blocks)?;
            let mut block_buf = vec![0u8; bs];
            for b in 0..blocks as usize {
                block_buf.fill(0);
                for slot in 0..rec_per_block {
                    let idx = b * rec_per_block + slot;
                    let rec = records.get(idx).copied().unwrap_or(SegRecord {
                        first_key: SENTINEL,
                        slope: 0.0,
                        start: 0,
                        len: 0,
                    });
                    put_record(&mut block_buf, slot, &rec);
                }
                disk.write(file, first_block + b as u32, BlockKind::Inner, &block_buf)?;
            }
            levels.push(LevelInfo { first_block, records: records.len() as u64 });

            // Segment the first keys of this level to form the level above.
            keys = records.iter().map(|r| r.first_key).collect();
            records = segment_keys(&keys, epsilon)
                .iter()
                .map(|s| SegRecord {
                    first_key: s.first_key,
                    slope: s.model.slope,
                    start: s.start_index as u64,
                    len: s.len as u32,
                })
                .collect();
        }

        let root =
            records.pop().unwrap_or(SegRecord { first_key: 0, slope: 0.0, start: 0, len: 0 });
        Ok(StaticPgm {
            disk,
            file,
            epsilon,
            len: entries.len() as u64,
            data_blocks,
            levels,
            root,
            min_key: entries.first().map_or(Key::MAX, |e| e.0),
            max_key: entries.last().map_or(0, |e| e.0),
        })
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the component holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest stored key (`Key::MAX` when empty).
    pub fn min_key(&self) -> Key {
        self.min_key
    }

    /// Largest stored key (0 when empty).
    pub fn max_key(&self) -> Key {
        self.max_key
    }

    /// Number of blocks holding the data level.
    pub fn data_blocks(&self) -> u32 {
        self.data_blocks
    }

    /// Number of inner levels (excluding the in-memory root and the data).
    pub fn inner_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of segment records across the on-disk inner levels.
    pub fn inner_records(&self) -> u64 {
        self.levels.iter().map(|l| l.records).sum()
    }

    /// Total blocks occupied by this component's file.
    pub fn blocks(&self) -> u64 {
        self.disk.num_blocks(self.file).unwrap_or(0) as u64
    }

    /// Serialises the component's placement metadata (file id, level table,
    /// in-memory root record, key bounds) into `w`. The inverse of
    /// [`load_meta`](Self::load_meta).
    pub fn save_meta(&self, w: &mut MetaWriter) {
        w.u32(self.file)
            .u64(self.epsilon as u64)
            .u64(self.len)
            .u32(self.data_blocks)
            .u32(self.levels.len() as u32);
        for l in &self.levels {
            w.u32(l.first_block).u64(l.records);
        }
        w.u64(self.root.first_key)
            .f64(self.root.slope)
            .u64(self.root.start)
            .u32(self.root.len)
            .u64(self.min_key)
            .u64(self.max_key);
    }

    /// Rebuilds a component handle from metadata written by
    /// [`save_meta`](Self::save_meta); the blocks themselves must already
    /// exist on `disk`.
    pub fn load_meta(disk: Arc<Disk>, r: &mut MetaReader<'_>) -> IndexResult<Self> {
        let file = r.u32()?;
        let epsilon = r.u64()? as usize;
        let len = r.u64()?;
        let data_blocks = r.u32()?;
        let level_count = r.u32()? as usize;
        let mut levels = Vec::with_capacity(level_count.min(64));
        for _ in 0..level_count {
            levels.push(LevelInfo { first_block: r.u32()?, records: r.u64()? });
        }
        let root =
            SegRecord { first_key: r.u64()?, slope: r.f64()?, start: r.u64()?, len: r.u32()? };
        let min_key = r.u64()?;
        let max_key = r.u64()?;
        Ok(StaticPgm { disk, file, epsilon, len, data_blocks, levels, root, min_key, max_key })
    }

    /// Frees every block of the component (called after an LSM merge; models
    /// deleting the component's file).
    pub fn release(&self) {
        let blocks = self.disk.num_blocks(self.file).unwrap_or(0);
        if blocks > 0 {
            self.disk.free(self.file, 0, blocks);
        }
    }

    /// Finds, within an inner level, the record covering `key`: the rightmost
    /// record with `first_key <= key` inside the window `[lo, hi]`.
    fn search_level(&self, level: &LevelInfo, key: Key, predicted: u64) -> IndexResult<SegRecord> {
        let rec_per_block = records_per_block(self.disk.block_size());
        // The covering record sits at rank(key) - 1, which can fall one slot
        // below the ε window around the predicted rank — widen by one.
        let lo = predicted.saturating_sub(self.epsilon as u64 + 1);
        let hi = (predicted + self.epsilon as u64).min(level.records - 1);
        let first_block = (lo / rec_per_block as u64) as u32;
        let last_block = (hi / rec_per_block as u64) as u32;
        let mut best: Option<SegRecord> = None;
        for b in first_block..=last_block {
            let buf = self.disk.read_ref(self.file, level.first_block + b, BlockKind::Inner)?;
            let slot_lo = if b == first_block { (lo % rec_per_block as u64) as usize } else { 0 };
            let slot_hi = if b == last_block {
                (hi % rec_per_block as u64) as usize
            } else {
                rec_per_block - 1
            };
            for slot in slot_lo..=slot_hi {
                let rec = record_at(&buf, slot);
                if rec.first_key == SENTINEL {
                    break;
                }
                if rec.first_key <= key {
                    best = Some(rec);
                } else {
                    break;
                }
            }
        }
        // The window is ε-bounded around the true position, so the covering
        // record is always inside it; if every record in the window starts
        // after `key`, the key belongs to the component's very first segment.
        match best {
            Some(r) => Ok(r),
            None => {
                let buf = self.disk.read_ref(self.file, level.first_block, BlockKind::Inner)?;
                Ok(record_at(&buf, 0))
            }
        }
    }

    /// Locates the data position of the first entry with key `>= key`.
    /// Returns `self.len` if every stored key is smaller.
    fn locate(&self, key: Key) -> IndexResult<u64> {
        if self.len == 0 {
            return Ok(0);
        }
        // Descend the inner levels from the root.
        let mut rec = self.root;
        for level in self.levels.iter().rev() {
            let predicted = rec.predict(key).min(level.records - 1);
            rec = self.search_level(level, key, predicted)?;
        }
        // `rec` now covers positions in the data level.
        let per_block = entries_per_block(self.disk.block_size());
        let predicted = rec.predict(key).min(self.len - 1);
        let lo = predicted.saturating_sub(self.epsilon as u64);
        let hi = (predicted + self.epsilon as u64).min(self.len - 1);
        let first_block = (lo / per_block as u64) as u32;
        let last_block = (hi / per_block as u64) as u32;
        // Find the first position in [lo, hi] whose key is >= `key`; thanks to
        // the ε bound this is the global lower bound as long as key falls in
        // the window; otherwise it is lo or hi+1.
        let mut result = hi + 1;
        'outer: for b in first_block..=last_block {
            let buf = self.disk.read_ref(self.file, b, BlockKind::Leaf)?;
            let slot_lo = if b == first_block { (lo % per_block as u64) as usize } else { 0 };
            let slot_hi =
                if b == last_block { (hi % per_block as u64) as usize } else { per_block - 1 };
            for slot in slot_lo..=slot_hi {
                let (k, _) = entry_at(&buf, slot);
                if k >= key {
                    result = b as u64 * per_block as u64 + slot as u64;
                    break 'outer;
                }
            }
        }
        Ok(result)
    }

    /// Point lookup.
    pub fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        if self.len == 0 || key < self.min_key || key > self.max_key {
            return Ok(None);
        }
        let pos = self.locate(key)?;
        if pos >= self.len {
            return Ok(None);
        }
        let per_block = entries_per_block(self.disk.block_size());
        let block = (pos / per_block as u64) as u32;
        let slot = (pos % per_block as u64) as usize;
        let buf = self.disk.read_ref(self.file, block, BlockKind::Leaf)?;
        let (k, v) = entry_at(&buf, slot);
        Ok((k == key).then_some(v))
    }

    /// Batched point lookups over probe keys sorted ascending.
    ///
    /// `pending` holds indexes into `keys` / `out` not yet resolved by a
    /// newer component, in ascending key order; every index whose key this
    /// component stores is answered into `out` and removed from `pending`.
    ///
    /// The data level is one globally sorted array, so consecutive probe
    /// keys usually land in the same data block: the last fetched block is
    /// pinned ([`BlockRef`]) and any following key inside its key range is
    /// answered by an in-memory binary search — one block fetch and one
    /// model descent per *run* of co-located keys instead of per key.
    pub fn lookup_batch_sorted(
        &self,
        keys: &[Key],
        pending: &mut Vec<u32>,
        out: &mut [Option<Value>],
    ) -> IndexResult<()> {
        if self.len == 0 {
            return Ok(());
        }
        if self.disk.queue_depth() > 1 {
            return self.lookup_batch_sorted_queued(keys, pending, out);
        }
        let per_block = entries_per_block(self.disk.block_size());
        // The pinned last data block: (first key, last key, valid slots, frame).
        let mut cached: Option<(Key, Key, usize, BlockRef)> = None;
        let mut still = Vec::with_capacity(pending.len());
        for &i in pending.iter() {
            let key = keys[i as usize];
            if key < self.min_key || key > self.max_key {
                still.push(i);
                continue;
            }
            let served = match &cached {
                Some((first, last, valid, buf)) if key >= *first && key <= *last => {
                    Self::search_block(buf, *valid, key)
                }
                _ => {
                    let pos = self.locate(key)?;
                    if pos >= self.len {
                        None
                    } else {
                        let block = (pos / per_block as u64) as u32;
                        let buf = self.disk.read_ref(self.file, block, BlockKind::Leaf)?;
                        let valid = ((self.len - u64::from(block) * per_block as u64) as usize)
                            .min(per_block);
                        let slot = (pos % per_block as u64) as usize;
                        let (k, v) = entry_at(&buf, slot);
                        let hit = (k == key).then_some(v);
                        let first = entry_at(&buf, 0).0;
                        let last = entry_at(&buf, valid - 1).0;
                        cached = Some((first, last, valid, buf));
                        hit
                    }
                }
            };
            match served {
                Some(v) => out[i as usize] = Some(v),
                None => still.push(i),
            }
        }
        *pending = still;
        Ok(())
    }

    /// Binary search for `key` among the first `valid` slots of a pinned
    /// data block.
    fn search_block(buf: &[u8], valid: usize, key: Key) -> Option<Value> {
        let (mut lo, mut hi) = (0usize, valid);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (k, v) = entry_at(buf, mid);
            match k.cmp(&key) {
                std::cmp::Ordering::Equal => return Some(v),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    /// Wave-fetches the distinct blocks named by `ranges` (inclusive block
    /// ranges relative to `first_block`) through the outstanding-read
    /// queue, returning the pinned frames keyed by relative block id.
    fn fetch_wave(
        &self,
        ranges: impl Iterator<Item = (u64, u64)>,
        first_block: u32,
        kind: BlockKind,
    ) -> IndexResult<HashMap<u32, BlockRef>> {
        let mut blocks = BTreeSet::new();
        for (b0, b1) in ranges {
            for b in b0..=b1 {
                blocks.insert(b as u32);
            }
        }
        let mut q = self.disk.read_queue();
        for &b in &blocks {
            q.submit(self.file, first_block + b, kind, AccessClass::Point)?;
        }
        Ok(q.complete()?.into_iter().map(|c| (c.block - first_block, c.frame)).collect())
    }

    /// The outstanding-I/O variant of [`Self::lookup_batch_sorted`], taken
    /// when the disk's queue depth exceeds 1: the pending probes descend the
    /// component *level by level*, and each level's ε-windows are fetched as
    /// one set of completion waves (charged max-per-wave, not
    /// sum-of-misses). The blocks touched and the answers produced are the
    /// same as the synchronous path; only the simulated time differs.
    fn lookup_batch_sorted_queued(
        &self,
        keys: &[Key],
        pending: &mut Vec<u32>,
        out: &mut [Option<Value>],
    ) -> IndexResult<()> {
        let bs = self.disk.block_size();
        let rec_per_block = records_per_block(bs) as u64;
        let per_block = entries_per_block(bs) as u64;
        let eps = self.epsilon as u64;
        // Probes outside the component's key range stay pending for older
        // components; everything else starts its descent at the root.
        let mut active: Vec<(u32, SegRecord)> = pending
            .iter()
            .filter(|&&i| (self.min_key..=self.max_key).contains(&keys[i as usize]))
            .map(|&i| (i, self.root))
            .collect();

        // Inner levels: predict every probe's window, wave-fetch the
        // windows' blocks, then resolve each probe's covering record in
        // memory (mirroring `search_level`).
        for level in self.levels.iter().rev() {
            let windows: Vec<(u64, u64)> = active
                .iter()
                .map(|&(i, rec)| {
                    let predicted = rec.predict(keys[i as usize]).min(level.records - 1);
                    (predicted.saturating_sub(eps + 1), (predicted + eps).min(level.records - 1))
                })
                .collect();
            let frames = self.fetch_wave(
                windows.iter().map(|&(lo, hi)| (lo / rec_per_block, hi / rec_per_block)),
                level.first_block,
                BlockKind::Inner,
            )?;
            for ((i, rec), &(lo, hi)) in active.iter_mut().zip(&windows) {
                let key = keys[*i as usize];
                let (first_block, last_block) = (lo / rec_per_block, hi / rec_per_block);
                let mut best: Option<SegRecord> = None;
                for b in first_block..=last_block {
                    let buf = &frames[&(b as u32)];
                    let slot_lo = if b == first_block { (lo % rec_per_block) as usize } else { 0 };
                    let slot_hi = if b == last_block {
                        (hi % rec_per_block) as usize
                    } else {
                        rec_per_block as usize - 1
                    };
                    for slot in slot_lo..=slot_hi {
                        let r = record_at(buf, slot);
                        if r.first_key == SENTINEL {
                            break;
                        }
                        if r.first_key <= key {
                            best = Some(r);
                        } else {
                            break;
                        }
                    }
                }
                *rec = match best {
                    Some(r) => r,
                    None => {
                        // Same fallback as `search_level`: the key precedes
                        // every record of the window, so it belongs to the
                        // level's very first segment.
                        let buf =
                            self.disk.read_ref(self.file, level.first_block, BlockKind::Inner)?;
                        record_at(&buf, 0)
                    }
                };
            }
        }

        // Data level: one more wave over the final ε-windows, then answer
        // each probe in memory (mirroring `locate` + the point lookup).
        let windows: Vec<(u64, u64)> = active
            .iter()
            .map(|&(i, rec)| {
                let predicted = rec.predict(keys[i as usize]).min(self.len - 1);
                (predicted.saturating_sub(eps), (predicted + eps).min(self.len - 1))
            })
            .collect();
        let frames = self.fetch_wave(
            windows.iter().map(|&(lo, hi)| (lo / per_block, hi / per_block)),
            0,
            BlockKind::Leaf,
        )?;
        let mut answered = Vec::new();
        for (&(i, _), &(lo, hi)) in active.iter().zip(&windows) {
            let key = keys[i as usize];
            let (first_block, last_block) = (lo / per_block, hi / per_block);
            let mut pos = hi + 1;
            'outer: for b in first_block..=last_block {
                let buf = &frames[&(b as u32)];
                let slot_lo = if b == first_block { (lo % per_block) as usize } else { 0 };
                let slot_hi = if b == last_block {
                    (hi % per_block) as usize
                } else {
                    per_block as usize - 1
                };
                for slot in slot_lo..=slot_hi {
                    if entry_at(buf, slot).0 >= key {
                        pos = b * per_block + slot as u64;
                        break 'outer;
                    }
                }
            }
            if pos >= self.len {
                continue;
            }
            let (k, v) = entry_at(&frames[&((pos / per_block) as u32)], (pos % per_block) as usize);
            if k == key {
                out[i as usize] = Some(v);
                answered.push(i);
            }
        }
        // Misses stay pending in their original (ascending-key) order.
        let answered: BTreeSet<u32> = answered.into_iter().collect();
        pending.retain(|i| !answered.contains(i));
        Ok(())
    }

    /// Collects up to `count` entries with keys `>= start` into `out`. The
    /// data blocks are streamed with scan-class reads, so a scan-resistant
    /// buffer pool admits them into probation only.
    pub fn scan_into(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<()> {
        if self.len == 0 || count == 0 || start > self.max_key {
            return Ok(());
        }
        let mut pos = if start <= self.min_key { 0 } else { self.locate(start)? };
        let per_block = entries_per_block(self.disk.block_size());
        let mut taken = 0usize;
        let mut hint = SeqHint::Auto;
        while pos < self.len && taken < count {
            let block = (pos / per_block as u64) as u32;
            // After the first block the stream advances through physically
            // consecutive data blocks, so the sequential charge is declared
            // explicitly instead of inferred from the shared last-access
            // word (which concurrent readers would perturb).
            let buf = self.disk.read_ref_hinted(
                self.file,
                block,
                BlockKind::Leaf,
                AccessClass::Scan,
                hint,
            )?;
            hint = SeqHint::Sequential;
            let mut slot = (pos % per_block as u64) as usize;
            while slot < per_block && pos < self.len && taken < count {
                let e = entry_at(&buf, slot);
                debug_assert_ne!(e.0, SENTINEL);
                out.push(e);
                taken += 1;
                slot += 1;
                pos += 1;
            }
        }
        Ok(())
    }

    /// Reads every entry back (used by LSM merges). Charges one read per data
    /// block.
    pub fn all_entries(&self) -> IndexResult<Vec<Entry>> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.scan_into(0, self.len as usize, &mut out)?;
        if self.len > 0 && out.len() != self.len as usize {
            return Err(IndexError::Internal(format!(
                "static PGM expected {} entries, read {}",
                self.len,
                out.len()
            )));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::DiskConfig;

    fn disk(bs: usize) -> Arc<Disk> {
        Disk::in_memory(DiskConfig::with_block_size(bs))
    }

    fn skewed_entries(n: u64) -> Vec<Entry> {
        let mut keys: Vec<u64> = (0..n).map(|i| i * 11 + (i % 31) * (i % 17) * 13).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter().map(|k| (k, k + 1)).collect()
    }

    #[test]
    fn build_and_lookup_all_keys() {
        let entries = skewed_entries(30_000);
        let pgm = StaticPgm::build(disk(512), &entries, 16).unwrap();
        assert_eq!(pgm.len(), entries.len() as u64);
        assert!(pgm.inner_levels() >= 1);
        for &(k, v) in entries.iter().step_by(703) {
            assert_eq!(pgm.lookup(k).unwrap(), Some(v), "key {k}");
        }
        assert_eq!(pgm.lookup(entries.last().unwrap().0 + 1).unwrap(), None);
        let (first_key, first_val) = entries[0];
        assert_eq!(pgm.lookup(first_key).unwrap(), Some(first_val));
        // A key strictly between two stored keys is absent.
        let gap = entries[100].0 + 1;
        if gap != entries[101].0 {
            assert_eq!(pgm.lookup(gap).unwrap(), None);
        }
    }

    #[test]
    fn lookup_io_is_bounded_by_height_and_epsilon() {
        let entries = skewed_entries(50_000);
        let pgm = StaticPgm::build(disk(4096), &entries, 64).unwrap();
        pgm.disk.stats().reset();
        let queries: Vec<Key> = entries.iter().step_by(977).map(|e| e.0).collect();
        for &k in &queries {
            pgm.disk.reset_access_state();
            pgm.lookup(k).unwrap();
        }
        let per_query = pgm.disk.stats().reads() as f64 / queries.len() as f64;
        // Height is 1-2 inner levels at this scale: expect ≤ 4 blocks/query.
        assert!(per_query <= 4.0, "average {per_query} blocks per lookup is too high");
    }

    #[test]
    fn scan_returns_sorted_contiguous_entries() {
        let entries = skewed_entries(20_000);
        let pgm = StaticPgm::build(disk(512), &entries, 32).unwrap();
        let mut out = Vec::new();
        pgm.scan_into(entries[5_000].0, 300, &mut out).unwrap();
        assert_eq!(out.len(), 300);
        assert_eq!(out[0], entries[5_000]);
        assert_eq!(out[299], entries[5_299]);
        // Starting below the minimum yields the first entries.
        out.clear();
        pgm.scan_into(0, 5, &mut out).unwrap();
        assert_eq!(out, entries[..5].to_vec());
        // Starting beyond the maximum yields nothing.
        out.clear();
        pgm.scan_into(entries.last().unwrap().0 + 1, 5, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn queued_batch_matches_sync_answers_and_overlaps_io() {
        use lidx_storage::DeviceModel;
        let entries = skewed_entries(30_000);
        // Sorted probes mixing hits and misses (gap keys plus one beyond
        // the maximum), exactly as the dynamic index would forward them.
        let mut probes: Vec<Key> = entries.iter().step_by(23).map(|e| e.0).collect();
        probes.push(entries.last().unwrap().0 + 5);
        probes.insert(120, entries[2_760].0 + 1);

        let config =
            || DiskConfig::with_block_size(512).device(DeviceModel::ssd()).buffer_blocks(64);
        let sync_pgm = StaticPgm::build(Disk::in_memory(config()), &entries, 16).unwrap();
        let mut sync_pending: Vec<u32> = (0..probes.len() as u32).collect();
        let mut sync_out = vec![None; probes.len()];
        sync_pgm.disk.stats().reset();
        sync_pgm.lookup_batch_sorted(&probes, &mut sync_pending, &mut sync_out).unwrap();
        let sync_ns = sync_pgm.disk.stats().device_ns();

        let queued_pgm =
            StaticPgm::build(Disk::in_memory(config().queue_depth(8)), &entries, 16).unwrap();
        let mut queued_pending: Vec<u32> = (0..probes.len() as u32).collect();
        let mut queued_out = vec![None; probes.len()];
        queued_pgm.disk.stats().reset();
        queued_pgm.lookup_batch_sorted(&probes, &mut queued_pending, &mut queued_out).unwrap();
        let queued_ns = queued_pgm.disk.stats().device_ns();

        assert_eq!(queued_out, sync_out, "queue depth must never change the answers");
        assert_eq!(queued_pending, sync_pending, "unresolved probes must match");
        assert!(
            queued_ns * 2 < sync_ns,
            "depth-8 window waves ({queued_ns} ns) must overlap the depth-1 cost ({sync_ns} ns)"
        );
        assert!(queued_pgm.disk.stats().overlap_saved_ns() > 0);
    }

    #[test]
    fn all_entries_roundtrips_and_release_frees_blocks() {
        let entries = skewed_entries(5_000);
        let d = disk(512);
        let pgm = StaticPgm::build(Arc::clone(&d), &entries, 16).unwrap();
        assert_eq!(pgm.all_entries().unwrap(), entries);
        let blocks = pgm.blocks();
        assert!(blocks > 0);
        pgm.release();
        assert_eq!(d.stats().freed_blocks(), blocks);
    }

    #[test]
    fn empty_and_tiny_components() {
        let pgm = StaticPgm::build(disk(512), &[], 16).unwrap();
        assert!(pgm.is_empty());
        assert_eq!(pgm.lookup(5).unwrap(), None);
        let mut out = Vec::new();
        pgm.scan_into(0, 10, &mut out).unwrap();
        assert!(out.is_empty());

        let one = StaticPgm::build(disk(512), &[(42, 43)], 16).unwrap();
        assert_eq!(one.lookup(42).unwrap(), Some(43));
        assert_eq!(one.lookup(41).unwrap(), None);
        assert_eq!(one.min_key(), 42);
        assert_eq!(one.max_key(), 42);
    }
}
