//! The racing-writer oracle suite: for every `IndexChoice` design, N writer
//! threads stage disjoint key sets through a [`ShardedWriteBuffer`] (whose
//! drains take the index write lock one chunk at a time) while M reader
//! threads race lookups and scans through the same buffer. Three properties
//! are checked:
//!
//! * **No torn reads** — every value a reader observes is one some writer
//!   legitimately wrote (values encode their key and version, so a torn or
//!   interleaved read cannot produce a valid encoding).
//! * **Per-key monotonic visibility** — once a reader has seen version `n`
//!   of a key, it never sees an older version (newest-wins overlay reads
//!   must not regress mid-drain).
//! * **Linearizability by final state** — after the threads join and the
//!   buffer flushes, a full scan and per-key lookups must equal a mutexed
//!   `BTreeMap` oracle maintained by the writers.
//!
//! Races rarely surface in a single debug run, so CI additionally executes
//! this test under `cargo test --release` (see .github/workflows/ci.yml).

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use lidx_core::{
    Entry, IndexRead, IndexWrite, Key, ShardedWriteBuffer, ShardedWriteBufferConfig, Value,
};
use lidx_experiments::runner::{IndexChoice, RunConfig};
use lidx_storage::DeviceModel;

const WRITERS: usize = 3;
const READERS: usize = 3;
const ROUNDS: usize = 300;
const READER_OPS: usize = 400;

/// A tiny deterministic PRNG (splitmix64) so each thread gets its own
/// reproducible operation stream without sharing any state.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dataset() -> Vec<Entry> {
    (0..8_000u64)
        .map(|i| i * 13 + (i % 31) * 5 + 1)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|k| (k, k + 1))
        .collect()
}

/// The value writer threads stage for `key` at `version` (1-based). The
/// encoding is invertible, so a reader can classify any observed value as
/// "bulk-loaded", "written at version v", or "torn garbage".
fn versioned(key: Key, version: u64) -> Value {
    key.wrapping_mul(31).wrapping_add(version)
}

/// Classifies an observed value: `Some(0)` = the bulk-loaded payload,
/// `Some(v)` = writer version `v`, `None` = no legitimate writer ever
/// produced it (a torn read).
fn version_of(key: Key, value: Value) -> Option<u64> {
    if value == key + 1 {
        return Some(0);
    }
    let v = value.wrapping_sub(key.wrapping_mul(31));
    (v >= 1 && v <= ROUNDS as u64).then_some(v)
}

/// The fresh keys writer `w` owns, in the order it stages them. Disjoint
/// across writers by construction and far above every bulk key.
fn fresh_key(max_bulk: Key, w: usize, i: usize) -> Key {
    max_bulk + 1_000 + ((i * WRITERS + w) as u64) * 17
}

#[test]
fn racing_writers_and_readers_agree_with_the_oracle_for_every_design() {
    let entries = dataset();
    let max_bulk = entries.last().unwrap().0;

    for choice in IndexChoice::ALL_DESIGNS {
        // Flat device model: the counters stay exact and the run stays fast.
        let cfg = RunConfig { device: DeviceModel::custom("flat", 1, 7, 1), ..Default::default() };
        let disk = cfg.make_disk();
        let mut index = choice.build(std::sync::Arc::clone(&disk));
        index.bulk_load(&entries).expect("bulk load");
        disk.stats().reset();
        disk.reset_access_state();

        let buffer = ShardedWriteBuffer::new(
            index,
            ShardedWriteBufferConfig { capacity: 96, drain: 32, shards: 4 },
        );
        let oracle: Mutex<BTreeMap<Key, Value>> = Mutex::new(entries.iter().copied().collect());

        let buffer = &buffer;
        let oracle = &oracle;
        let entries = &entries;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                s.spawn(move || {
                    let mut rng = 0xBEEF_0000_u64 ^ ((w as u64 + 1) << 40);
                    for i in 0..ROUNDS {
                        let version = i as u64 + 1;
                        let r = splitmix(&mut rng);
                        // Mostly fresh keys; every fourth round upserts an
                        // owned bulk key (index w mod WRITERS ownership keeps
                        // the sets disjoint across writers).
                        let key = if r.is_multiple_of(4) {
                            let slot = (r as usize / 4) % (entries.len() / WRITERS);
                            entries[slot * WRITERS + w].0
                        } else {
                            fresh_key(max_bulk, w, i)
                        };
                        let value = versioned(key, version);
                        buffer.stage(key, value).expect("stage");
                        oracle.lock().unwrap().insert(key, value);
                    }
                });
            }
            for t in 0..READERS {
                s.spawn(move || {
                    let mut rng = 0xFEED_0000_u64 ^ ((t as u64 + 1) << 40);
                    let mut seen: HashMap<Key, u64> = HashMap::new();
                    let mut out = Vec::new();
                    for _ in 0..READER_OPS {
                        let r = splitmix(&mut rng);
                        if r % 5 == 4 {
                            // Scan: every observed entry must carry a valid
                            // encoding and the keys must be strictly sorted.
                            let start = splitmix(&mut rng) % (max_bulk + 2_000);
                            let n =
                                buffer.scan(start, (r % 48 + 1) as usize, &mut out).expect("scan");
                            assert!(out.len() == n);
                            assert!(out.windows(2).all(|p| p[0].0 < p[1].0), "{choice:?} sorted");
                            for &(k, v) in &out {
                                assert!(
                                    version_of(k, v).is_some(),
                                    "{choice:?} reader {t}: torn scan value {v} for key {k}"
                                );
                            }
                        } else {
                            // Lookup one of: a bulk key (possibly upserted),
                            // a writer's fresh key (possibly not yet staged).
                            let key = if r.is_multiple_of(2) {
                                entries[(r as usize / 8) % entries.len()].0
                            } else {
                                let w = (r as usize / 8) % WRITERS;
                                fresh_key(max_bulk, w, (r as usize / 64) % ROUNDS)
                            };
                            match buffer.lookup(key).expect("lookup") {
                                None => assert!(
                                    key > max_bulk,
                                    "{choice:?} reader {t}: bulk key {key} vanished"
                                ),
                                Some(v) => {
                                    let version = version_of(key, v).unwrap_or_else(|| {
                                        panic!(
                                            "{choice:?} reader {t}: torn value {v} for key {key}"
                                        )
                                    });
                                    let last = seen.entry(key).or_insert(0);
                                    assert!(
                                        version >= *last,
                                        "{choice:?} reader {t}: key {key} regressed \
                                         from version {last} to {version}"
                                    );
                                    *last = version;
                                }
                            }
                        }
                    }
                });
            }
        });

        // Linearizability by final state: flush, then the index must equal
        // the oracle exactly — every key, every newest value.
        buffer.flush().expect("final flush");
        let oracle = oracle.lock().unwrap();
        // PGM's key count is lazily reconciled (duplicates are only
        // subtracted when an LSM merge meets them), so the length check is a
        // lower bound; the scan below pins the exact contents for everyone.
        assert!(buffer.len() >= oracle.len() as u64, "{choice:?} final length");
        let keys: Vec<Key> = oracle.keys().copied().collect();
        let mut answers = Vec::new();
        buffer.lookup_batch(&keys, &mut answers).expect("final lookups");
        for (i, (&k, &v)) in oracle.iter().enumerate() {
            assert_eq!(answers[i], Some(v), "{choice:?} final lookup({k})");
        }
        let mut scanned = Vec::new();
        let n = buffer.scan(0, oracle.len() + 16, &mut scanned).expect("final scan");
        assert_eq!(n, oracle.len(), "{choice:?} final scan length");
        let expect: Vec<Entry> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(scanned, expect, "{choice:?} final scan contents");

        // The contention counters must have seen the race: drains happened,
        // and every drain chunk carried entries.
        let stats = disk.stats();
        assert!(stats.drain_chunks() > 0, "{choice:?}: the buffer must have drained");
        assert!(
            stats.drain_entries() >= stats.drain_chunks(),
            "{choice:?}: drain chunks cannot be empty"
        );
    }
}

#[test]
fn final_state_is_independent_of_thread_interleaving() {
    // Writer-owned keys make the final state deterministic: two runs with
    // different reader pressure (0 vs many readers) must converge to the
    // same index contents.
    let entries = dataset();
    let max_bulk = entries.last().unwrap().0;
    for choice in [IndexChoice::BTree, IndexChoice::Alex, IndexChoice::HybridModelTree] {
        let run = |readers: usize| -> Vec<Entry> {
            let disk = RunConfig::default().make_disk();
            let mut index = choice.build(std::sync::Arc::clone(&disk));
            index.bulk_load(&entries).expect("bulk load");
            let buffer = ShardedWriteBuffer::new(
                index,
                ShardedWriteBufferConfig { capacity: 64, drain: 16, shards: 4 },
            );
            let buffer = &buffer;
            std::thread::scope(|s| {
                for w in 0..WRITERS {
                    s.spawn(move || {
                        for i in 0..ROUNDS {
                            let key = fresh_key(max_bulk, w, i);
                            buffer.stage(key, versioned(key, i as u64 + 1)).expect("stage");
                        }
                    });
                }
                for _ in 0..readers {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for i in 0..READER_OPS {
                            buffer.scan((i as u64) * 29, 24, &mut out).expect("scan");
                        }
                    });
                }
            });
            buffer.flush().expect("flush");
            let mut out = Vec::new();
            buffer.scan(0, entries.len() + WRITERS * ROUNDS, &mut out).expect("full scan");
            out
        };
        let quiet = run(0);
        let contended = run(READERS * 2);
        assert_eq!(quiet, contended, "{choice:?}: final state depends on interleaving");
    }
}
