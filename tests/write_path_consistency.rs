//! `insert_batch` ≡ sequential `insert` and `WriteBuffer` ≡ direct inserts,
//! for every index design.
//!
//! The batched write APIs promise the *logical* outcome of the per-entry
//! loop, for any input — fresh keys, overwrites of stored keys, in-batch
//! duplicates (later wins), unsorted order — regardless of whether the
//! design uses the default loop or a specialised override (B+-tree leaf-run
//! insert, FITing-tree delta-buffer fill, PGM run-append, hybrid dense-leaf
//! append with the deferred directory rebuild). The `WriteBuffer` adds the
//! overlay contract on top: while entries are staged, every lookup, batched
//! lookup and scan must answer newest-wins, exactly as if the entries had
//! been inserted directly. These tests pin both contracts for all seven
//! `IndexChoice` designs, deterministically and under proptest-generated
//! workloads, and additionally pin the satellite fix that every design
//! reports a real (non-zero) insert-step breakdown.

use std::collections::BTreeMap;

use lidx_core::{
    DiskIndex, Entry, IndexWrite, InsertStep, Key, Value, WriteBuffer, WriteBufferConfig,
};
use lidx_experiments::runner::{IndexChoice, RunConfig};
use proptest::prelude::*;

fn build_loaded(choice: IndexChoice, entries: &[Entry]) -> Box<dyn DiskIndex> {
    let disk = RunConfig::default().make_disk();
    let mut index = choice.build(disk);
    index.bulk_load(entries).expect("bulk load");
    index
}

/// Checks that `index` agrees with `oracle` on every oracle key, a spread of
/// misses, and a full scan.
fn check_against_oracle(index: &dyn DiskIndex, oracle: &BTreeMap<Key, Value>, label: &str) {
    let keys: Vec<Key> = oracle.keys().copied().collect();
    let mut answers = Vec::new();
    index.lookup_batch(&keys, &mut answers).expect("lookup_batch");
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(answers[i], oracle.get(&k).copied(), "{label} key {k}");
    }
    for &k in keys.iter().step_by(7) {
        let miss = k + 1;
        if !oracle.contains_key(&miss) {
            assert_eq!(index.lookup(miss).expect("lookup"), None, "{label} miss {miss}");
        }
    }
    let mut scanned = Vec::new();
    index.scan(0, oracle.len() + 16, &mut scanned).expect("scan");
    let expected: Vec<Entry> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(scanned, expected, "{label} full scan");
}

/// A deterministic batch exercising every interesting shape: fresh keys,
/// overwrites of bulk keys, in-batch duplicates, unsorted order.
fn mixed_batch(bulk: &[Entry]) -> Vec<Entry> {
    // Key 45 collides with neither generator (batch keys are ≡ 2 mod 21,
    // bulk keys ≡ 1 mod 9); after the reverse, (45, 1) is the later
    // occurrence and must win.
    let mut batch: Vec<Entry> = (0..400u64).map(|i| (i * 21 + 2, 1_000_000 + i)).collect();
    batch.extend(bulk.iter().step_by(97).map(|&(k, _)| (k, 7_777_777)));
    batch.push((45, 1));
    batch.push((45, 2));
    batch.reverse();
    batch
}

fn apply_to_oracle(oracle: &mut BTreeMap<Key, Value>, batch: &[Entry]) {
    for &(k, v) in batch {
        oracle.insert(k, v);
    }
}

#[test]
fn insert_batch_matches_sequential_for_every_design() {
    let bulk: Vec<Entry> = (0..5_000u64).map(|i| (i * 9 + 1, i)).collect();
    let batch = mixed_batch(&bulk);
    let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
    apply_to_oracle(&mut oracle, &batch);

    for choice in IndexChoice::ALL_DESIGNS {
        let mut batched = build_loaded(choice, &bulk);
        batched.insert_batch(&batch).expect("insert_batch");
        let mut sequential = build_loaded(choice, &bulk);
        for &(k, v) in &batch {
            sequential.insert(k, v).expect("insert");
        }
        check_against_oracle(&*batched, &oracle, &format!("{choice:?} batched"));
        check_against_oracle(&*sequential, &oracle, &format!("{choice:?} sequential"));
        assert_eq!(
            batched.len(),
            sequential.len(),
            "{choice:?} batched and sequential key counts must agree"
        );
        assert_eq!(batched.lookup(45).expect("lookup"), Some(1), "{choice:?} later dup wins");
    }
}

#[test]
fn write_buffer_matches_direct_inserts_with_newest_wins_overlay() {
    let bulk: Vec<Entry> = (0..4_000u64).map(|i| (i * 11 + 3, i)).collect();
    let batch = mixed_batch(&bulk);
    let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();

    for choice in IndexChoice::ALL_DESIGNS {
        // Capacity larger than the batch: everything stays staged, so the
        // overlay serves every read until the explicit flush.
        let mut buffered = WriteBuffer::new(
            build_loaded(choice, &bulk),
            WriteBufferConfig { capacity: batch.len() + 1, drain: 64 },
        );
        let mut direct = build_loaded(choice, &bulk);
        let mut mid_oracle = oracle.clone();
        for (i, &(k, v)) in batch.iter().enumerate() {
            buffered.insert(k, v).expect("buffered insert");
            direct.insert(k, v).expect("direct insert");
            mid_oracle.insert(k, v);
            // Interleaved mid-buffer reads: staged entries must be visible,
            // newest-wins, through lookup, lookup_batch and scan.
            if i % 97 == 0 {
                use lidx_core::IndexRead;
                assert_eq!(
                    buffered.lookup(k).expect("mid lookup"),
                    Some(v),
                    "{choice:?} staged key {k} invisible mid-buffer"
                );
                let mut rows = Vec::new();
                buffered.scan(k.saturating_sub(5), 8, &mut rows).expect("mid scan");
                let expected: Vec<Entry> = mid_oracle
                    .range(k.saturating_sub(5)..)
                    .take(8)
                    .map(|(&ok, &ov)| (ok, ov))
                    .collect();
                assert_eq!(rows, expected, "{choice:?} mid-buffer scan at {k}");
            }
        }
        assert!(buffered.staged_len() > 0, "{choice:?} entries must still be staged");
        apply_to_oracle(&mut oracle, &batch);
        check_against_oracle(&buffered, &oracle, &format!("{choice:?} overlaid"));

        // Drain and compare against the direct index: identical content.
        buffered.flush().expect("flush");
        assert_eq!(buffered.staged_len(), 0);
        let drained = buffered.into_inner().expect("into_inner");
        check_against_oracle(&*drained, &oracle, &format!("{choice:?} drained"));
        check_against_oracle(&*direct, &oracle, &format!("{choice:?} direct"));
        assert_eq!(drained.len(), direct.len(), "{choice:?} drained vs direct key count");
        oracle = bulk.iter().copied().collect();
    }
}

#[test]
fn write_buffer_auto_drains_at_capacity_through_insert_batch() {
    for choice in IndexChoice::ALL_DESIGNS {
        let bulk: Vec<Entry> = (0..1_000u64).map(|i| (i * 13, i)).collect();
        let mut buffered = WriteBuffer::new(
            build_loaded(choice, &bulk),
            WriteBufferConfig { capacity: 64, drain: 32 },
        );
        for i in 0..300u64 {
            buffered.insert(i * 13 + 5, i).expect("insert");
        }
        use lidx_core::IndexRead;
        assert!(buffered.staged_len() < 64, "{choice:?} auto-drains must have fired");
        let b = buffered.insert_breakdown();
        assert!(b.drains >= 4, "{choice:?} expected >= 4 drains, saw {}", b.drains);
        assert_eq!(b.drained_entries + buffered.staged_len() as u64, 300, "{choice:?}");
        // Every inserted key is findable whether it drained or is staged.
        for i in (0..300u64).step_by(23) {
            assert_eq!(buffered.lookup(i * 13 + 5).expect("lookup"), Some(i), "{choice:?}");
        }
    }
}

#[test]
fn every_design_reports_a_real_insert_breakdown() {
    // The satellite fix: `insert_breakdown` moved onto `IndexWrite` with no
    // silently-zero default, so after inserts every design must report its
    // insert count and a non-zero search cost (every write path starts by
    // locating the key's position on disk).
    let bulk: Vec<Entry> = (0..3_000u64).map(|i| (i * 7, i)).collect();
    for choice in IndexChoice::ALL_DESIGNS {
        let mut index = build_loaded(choice, &bulk);
        for i in 0..200u64 {
            index.insert(i * 7 + 3, i).expect("insert");
        }
        let b = index.insert_breakdown();
        assert_eq!(b.inserts, 200, "{choice:?} must count every insert");
        assert!(
            b.device_ns(InsertStep::Search) > 0,
            "{choice:?} must attribute non-zero search time"
        );
        assert!(b.reads(InsertStep::Search) > 0, "{choice:?} search must fetch blocks");
        assert!(b.total_ns() >= b.device_ns(InsertStep::Search));
        assert_eq!(b.drains, 0, "{choice:?} a bare index never drains");

        // The batched path must keep counting per-entry.
        let batch: Vec<Entry> = (0..50u64).map(|i| (i * 7 + 4, i)).collect();
        index.insert_batch(&batch).expect("insert_batch");
        assert_eq!(index.insert_breakdown().inserts, 250, "{choice:?} batch coverage");
    }
}

#[test]
fn empty_batches_and_uninitialised_indexes_error_cleanly() {
    for choice in IndexChoice::ALL_DESIGNS {
        let mut index = build_loaded(choice, &[(5, 6)]);
        index.insert_batch(&[]).expect("empty batch is a no-op");
        assert_eq!(index.len(), 1);

        let disk = RunConfig::default().make_disk();
        let mut fresh = choice.build(disk);
        assert!(
            fresh.insert_batch(&[(1, 2)]).is_err(),
            "{choice:?} insert_batch before bulk_load must fail"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Property: for random bulk loads and random insert batches (duplicate
    /// keys and bulk-key overwrites included), `insert_batch` produces
    /// exactly the content of the sequential loop, for every design.
    #[test]
    fn random_insert_batches_match_sequential(
        bulk_keys in proptest::collection::btree_set(0u64..400_000, 20..200),
        batch_keys in proptest::collection::vec(0u64..450_000, 1..150),
    ) {
        let bulk: Vec<Entry> = bulk_keys.iter().map(|&k| (k, k + 1)).collect();
        let batch: Vec<Entry> =
            batch_keys.iter().enumerate().map(|(i, &k)| (k, 2_000_000 + i as u64)).collect();
        let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
        for &(k, v) in &batch {
            oracle.insert(k, v);
        }
        for choice in IndexChoice::ALL_DESIGNS {
            let mut batched = build_loaded(choice, &bulk);
            batched.insert_batch(&batch).expect("insert_batch");
            let probes: Vec<Key> = oracle.keys().copied().collect();
            let mut answers = Vec::new();
            batched.lookup_batch(&probes, &mut answers).expect("lookup_batch");
            for (i, &k) in probes.iter().enumerate() {
                prop_assert_eq!(answers[i], oracle.get(&k).copied(), "{:?} key {}", choice, k);
            }
            let mut scanned = Vec::new();
            batched.scan(0, oracle.len() + 8, &mut scanned).expect("scan");
            let expected: Vec<Entry> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(&scanned, &expected, "{:?} full scan", choice);
        }
    }

    /// Property: a `WriteBuffer` (small capacity, so drains interleave with
    /// staging) over random inserts reads newest-wins mid-stream and
    /// matches the direct index after the final flush, for every design.
    #[test]
    fn random_write_buffer_runs_match_direct_inserts(
        bulk_keys in proptest::collection::btree_set(0u64..300_000, 20..150),
        inserts in proptest::collection::vec((0u64..350_000, 0u64..1_000), 1..120),
        capacity in 4usize..48,
    ) {
        let bulk: Vec<Entry> = bulk_keys.iter().map(|&k| (k, k + 1)).collect();
        let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
        for choice in IndexChoice::ALL_DESIGNS {
            let mut buffered = WriteBuffer::new(
                build_loaded(choice, &bulk),
                WriteBufferConfig { capacity, drain: capacity.div_ceil(2) },
            );
            let mut direct = build_loaded(choice, &bulk);
            let mut mid = oracle.clone();
            for (i, &(k, v)) in inserts.iter().enumerate() {
                buffered.insert(k, v).expect("buffered insert");
                direct.insert(k, v).expect("direct insert");
                mid.insert(k, v);
                if i % 13 == 0 {
                    use lidx_core::IndexRead;
                    prop_assert_eq!(
                        buffered.lookup(k).expect("mid lookup"),
                        Some(v),
                        "{:?} staged or drained key {} must read newest-wins",
                        choice,
                        k
                    );
                    let mut rows = Vec::new();
                    buffered.scan(k, 5, &mut rows).expect("mid scan");
                    let expected: Vec<Entry> =
                        mid.range(k..).take(5).map(|(&ok, &ov)| (ok, ov)).collect();
                    prop_assert_eq!(&rows, &expected, "{:?} mid scan at {}", choice, k);
                }
            }
            let drained = buffered.into_inner().expect("into_inner");
            let probes: Vec<Key> = mid.keys().copied().collect();
            let mut a = Vec::new();
            let mut b = Vec::new();
            drained.lookup_batch(&probes, &mut a).expect("drained lookups");
            direct.lookup_batch(&probes, &mut b).expect("direct lookups");
            prop_assert_eq!(&a, &b, "{:?} drained vs direct answers", choice);
            for (i, &k) in probes.iter().enumerate() {
                prop_assert_eq!(a[i], mid.get(&k).copied(), "{:?} oracle key {}", choice, k);
            }
        }
        oracle.clear();
    }

    /// Property: a [`ShardedWriteBuffer`] with a tiny per-shard capacity (so
    /// threshold drains fire constantly mid-stream) answers every interleaved
    /// lookup and scan newest-wins — visibility never regresses across the
    /// stage → drain-chunk → reconcile windows — and matches the oracle
    /// exactly after the final flush, for every design.
    #[test]
    fn random_sharded_buffer_overlay_reads_never_regress(
        bulk_keys in proptest::collection::btree_set(0u64..300_000, 20..150),
        inserts in proptest::collection::vec((0u64..350_000, 0u64..1_000), 1..120),
        capacity in 4usize..32,
        shards in 1usize..6,
    ) {
        use lidx_core::{IndexRead, ShardedWriteBuffer, ShardedWriteBufferConfig};
        let bulk: Vec<Entry> = bulk_keys.iter().map(|&k| (k, k + 1)).collect();
        let oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
        for choice in IndexChoice::ALL_DESIGNS {
            let buffer = ShardedWriteBuffer::new(
                build_loaded(choice, &bulk),
                ShardedWriteBufferConfig { capacity, drain: capacity.div_ceil(2), shards },
            );
            let mut mid = oracle.clone();
            for (i, &(k, v)) in inserts.iter().enumerate() {
                buffer.stage(k, v).expect("stage");
                mid.insert(k, v);
                // Interleave reads with the threshold drains: the staged
                // key, an unrelated older key, and a scan crossing shard
                // boundaries must all answer newest-wins.
                prop_assert_eq!(
                    buffer.lookup(k).expect("mid lookup"),
                    Some(v),
                    "{:?} key {} invisible mid-drain",
                    choice,
                    k
                );
                if i % 7 == 0 {
                    let probe = bulk[i % bulk.len()].0;
                    prop_assert_eq!(
                        buffer.lookup(probe).expect("old lookup"),
                        mid.get(&probe).copied(),
                        "{:?} bulk key {} regressed",
                        choice,
                        probe
                    );
                    let start = k.saturating_sub(1_000);
                    let mut rows = Vec::new();
                    buffer.scan(start, 8, &mut rows).expect("mid scan");
                    let expected: Vec<Entry> =
                        mid.range(start..).take(8).map(|(&ok, &ov)| (ok, ov)).collect();
                    prop_assert_eq!(&rows, &expected, "{:?} mid scan at {}", choice, start);
                }
            }
            buffer.flush().expect("final flush");
            prop_assert_eq!(buffer.staged_len(), 0, "{:?} flush must empty every shard", choice);
            let probes: Vec<Key> = mid.keys().copied().collect();
            let mut answers = Vec::new();
            buffer.lookup_batch(&probes, &mut answers).expect("final lookups");
            for (i, &k) in probes.iter().enumerate() {
                prop_assert_eq!(answers[i], mid.get(&k).copied(), "{:?} final key {}", choice, k);
            }
            let mut scanned = Vec::new();
            buffer.scan(0, mid.len() + 16, &mut scanned).expect("final scan");
            let expected: Vec<Entry> = mid.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(&scanned, &expected, "{:?} final scan", choice);
        }
    }
}
