//! Kill-and-recover oracles: every design, crashed at an adversarial point
//! and reopened, must agree exactly with an in-memory newest-wins oracle.
//!
//! The fault matrix per design:
//!
//! * **clean kill** — checkpoint, drop, reopen: nothing to replay, exact
//!   equality with the full oracle.
//! * **mid-drain kill** — the first index write after the WAL fsync-point
//!   fails, so the drain dies before damaging a single block; the reopen
//!   replays the entire staged set over the last checkpoint. Exact.
//! * **torn WAL record** — the group-commit tail block is torn mid-record;
//!   replay trims to the valid prefix. The recovered store must equal the
//!   oracle after exactly `replayed` operations (records are applied in op
//!   order, so the replay count names the prefix).
//! * **torn superblock** — the checkpoint after a quiescent checkpoint tears
//!   its superblock slot; reopen falls back to the previous generation,
//!   which describes the identical state. Exact, nothing to replay.
//! * **transient read EIO** — the reopen's reads hit a burst of injected
//!   EIOs; the bounded-backoff retry path absorbs them. Exact, and the
//!   retries are visible in `IoStats::io_retries`.
//!
//! Sharded mode extends the matrix: a durable sharded router killed in the
//! middle of an online shard split must recover to *exactly* the pre-split
//! or the post-split boundary set — a kill before the manifest rename
//! serves the old shard untouched (and the reopen sweeps the orphaned
//! half-built dirs), a kill after it serves the two halves (and sweeps the
//! retired dir). Either way the recovered contents equal the oracle: no
//! half-moved shard, no lost key.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use lidx_core::{payload_for, IndexRead, IndexWrite, Key, Value, WriteBufferConfig};
use lidx_experiments::recovery::{create_durable_index, reopen_durable_index, DurableIndex};
use lidx_experiments::sharded_recovery::{DurableShardedRouter, SplitFault};
use lidx_experiments::IndexChoice;
use lidx_storage::{Disk, FaultPlan};

const BLOCK: usize = 4096;
const BULK: usize = 3_000;
const OPS: usize = 300;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn scratch(tag: &str, choice: IndexChoice) -> PathBuf {
    std::env::temp_dir().join(format!("lidx-kar-{tag}-{}-{}", choice.name(), std::process::id()))
}

fn bulk_entries() -> Vec<(Key, Value)> {
    let mut state = 0xB01D_FACE;
    let mut keys: Vec<Key> = (0..BULK).map(|_| splitmix64(&mut state) >> 1).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter().map(|k| (k, payload_for(k))).collect()
}

/// The op stream: a deterministic mix of updates to bulk keys (every third
/// op) and inserts of fresh keys, each carrying a value no other op or bulk
/// entry uses, so newest-wins outcomes are unambiguous.
fn op_stream(bulk: &[(Key, Value)]) -> Vec<(Key, Value)> {
    let mut state = 0xCAFE_D00D;
    (0..OPS)
        .map(|i| {
            let key = if i % 3 == 0 {
                bulk[(splitmix64(&mut state) as usize) % bulk.len()].0
            } else {
                splitmix64(&mut state) >> 1
            };
            (key, 1_000_000_000 + i as Value)
        })
        .collect()
}

/// The oracle after the bulk load plus the first `t` operations.
fn oracle_at(bulk: &[(Key, Value)], ops: &[(Key, Value)], t: usize) -> BTreeMap<Key, Value> {
    let mut m: BTreeMap<Key, Value> = bulk.iter().copied().collect();
    for &(k, v) in &ops[..t] {
        m.insert(k, v);
    }
    m
}

/// Exact newest-wins equality: every oracle key answers its oracle value,
/// a spread of absent keys answers `None`, and a range scan from the
/// smallest key reproduces the oracle's ascending prefix.
fn assert_matches_oracle(front: &DurableIndex, oracle: &BTreeMap<Key, Value>, label: &str) {
    for (&k, &v) in oracle {
        assert_eq!(
            front.lookup(k).expect("lookup"),
            Some(v),
            "{label}: key {k} must answer its newest value"
        );
    }
    let mut state = 0xAB5E_u64;
    for _ in 0..64 {
        let k = splitmix64(&mut state) | (1 << 63); // bulk/op keys are < 2^63
        assert_eq!(front.lookup(k).expect("lookup"), None, "{label}: absent key {k}");
    }
    let (&first, _) = oracle.iter().next().expect("oracle is never empty");
    let want: Vec<(Key, Value)> = oracle.iter().take(100).map(|(&k, &v)| (k, v)).collect();
    let mut got = Vec::new();
    front.scan(first, 100, &mut got).expect("scan");
    assert_eq!(got, want, "{label}: scan from the smallest key");
}

fn disk_of(front: &DurableIndex) -> Arc<Disk> {
    Arc::clone(front.disk())
}

#[test]
fn clean_kill_recovers_exactly() {
    let bulk = bulk_entries();
    let ops = op_stream(&bulk);
    let oracle = oracle_at(&bulk, &ops, OPS);
    for choice in IndexChoice::ALL_DESIGNS {
        let dir = scratch("clean", choice);
        let mut front =
            create_durable_index(&dir, BLOCK, choice, WriteBufferConfig::default(), None)
                .expect("create");
        front.bulk_load(&bulk).expect("bulk load");
        for &(k, v) in &ops {
            front.insert(k, v).expect("insert");
        }
        let stats = disk_of(&front).snapshot();
        assert!(
            stats.wal_appends >= OPS as u64,
            "{}: every op must be logged (got {} appends)",
            choice.name(),
            stats.wal_appends
        );
        assert!(stats.wal_bytes > 0, "{}: WAL bytes must be counted", choice.name());
        front.checkpoint(true).expect("clean checkpoint");
        drop(front);

        let (recovered, replayed) =
            reopen_durable_index(&dir, BLOCK, WriteBufferConfig::default(), None).expect("reopen");
        assert_eq!(replayed, 0, "{}: a clean checkpoint leaves no WAL tail", choice.name());
        assert_matches_oracle(&recovered, &oracle, choice.name());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn mid_drain_kill_replays_the_full_staged_set() {
    let bulk = bulk_entries();
    let ops = op_stream(&bulk);
    let oracle = oracle_at(&bulk, &ops, OPS);
    for choice in IndexChoice::ALL_DESIGNS {
        let dir = scratch("middrain", choice);
        let plan = FaultPlan::new();
        let mut front = create_durable_index(
            &dir,
            BLOCK,
            choice,
            WriteBufferConfig::default(),
            Some(plan.clone()),
        )
        .expect("create");
        front.bulk_load(&bulk).expect("bulk load");
        for &(k, v) in &ops {
            front.insert(k, v).expect("insert");
        }
        // Write #1 from here is the WAL sync's tail flush (the fsync-point);
        // write #2 is the drain's first index write. Failing it kills the
        // drain before any index block changes, modelling a crash at the
        // most adversarial moment the WAL protocol defends: after the log
        // is durable, before the structure absorbed anything.
        plan.fail_nth_write(2);
        let err = front.flush();
        assert!(err.is_err(), "{}: the injected write failure must surface", choice.name());
        assert_eq!(plan.writes_failed(), 1, "{}: exactly one write fails", choice.name());
        drop(front); // the kill

        let (recovered, replayed) =
            reopen_durable_index(&dir, BLOCK, WriteBufferConfig::default(), None).expect("reopen");
        assert_eq!(
            replayed,
            OPS as u64,
            "{}: every logged op is replayed over the last checkpoint",
            choice.name()
        );
        let stats = disk_of(&recovered).snapshot();
        assert_eq!(
            stats.replayed_entries,
            OPS as u64,
            "{}: the replay is visible in IoStats",
            choice.name()
        );
        assert_matches_oracle(&recovered, &oracle, choice.name());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn torn_wal_record_recovers_a_consistent_prefix() {
    let bulk = bulk_entries();
    let ops = op_stream(&bulk);
    for choice in IndexChoice::ALL_DESIGNS {
        let dir = scratch("tornwal", choice);
        let plan = FaultPlan::new();
        let mut front = create_durable_index(
            &dir,
            BLOCK,
            choice,
            WriteBufferConfig::default(),
            Some(plan.clone()),
        )
        .expect("create");
        front.bulk_load(&bulk).expect("bulk load");
        for &(k, v) in &ops {
            front.insert(k, v).expect("insert");
        }
        // Tear the group-commit tail flush mid-record: 100 bytes is three
        // whole 32-byte records plus 4 bytes of a fourth.
        plan.tear_nth_write(1, 100);
        assert!(front.sync_wal().is_err(), "{}: the torn sync must surface", choice.name());
        assert_eq!(plan.writes_torn(), 1, "{}: exactly one write tears", choice.name());
        drop(front); // the kill

        let (recovered, replayed) =
            reopen_durable_index(&dir, BLOCK, WriteBufferConfig::default(), None).expect("reopen");
        let replayed = replayed as usize;
        assert!(
            replayed < OPS,
            "{}: the torn record and its successors must not replay",
            choice.name()
        );
        // Records replay in op order, so the recovered store is the oracle
        // after exactly `replayed` operations — prefix consistency.
        let oracle = oracle_at(&bulk, &ops, replayed);
        assert_matches_oracle(&recovered, &oracle, choice.name());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn torn_superblock_falls_back_to_the_previous_checkpoint() {
    let bulk = bulk_entries();
    let ops = op_stream(&bulk);
    let oracle = oracle_at(&bulk, &ops, OPS);
    for choice in IndexChoice::ALL_DESIGNS {
        let dir = scratch("tornsb", choice);
        let plan = FaultPlan::new();
        let mut front = create_durable_index(
            &dir,
            BLOCK,
            choice,
            WriteBufferConfig::default(),
            Some(plan.clone()),
        )
        .expect("create");
        front.bulk_load(&bulk).expect("bulk load");
        for &(k, v) in &ops {
            front.insert(k, v).expect("insert");
        }
        front.checkpoint(false).expect("quiescent checkpoint");
        // A second, quiescent checkpoint whose superblock slot tears: the
        // reopen must fall back to the previous generation, which describes
        // the identical state.
        plan.tear_next_superblock(32);
        assert!(
            front.checkpoint(false).is_err(),
            "{}: the torn superblock must surface",
            choice.name()
        );
        drop(front); // the kill

        let (recovered, replayed) =
            reopen_durable_index(&dir, BLOCK, WriteBufferConfig::default(), None)
                .expect("reopen falls back to the intact slot");
        assert_eq!(replayed, 0, "{}: the WAL was already truncated", choice.name());
        assert_matches_oracle(&recovered, &oracle, choice.name());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Builds a loaded 3-shard durable router in `dir` with the ops applied,
/// returning the shard whose range holds the most oracle keys (the one the
/// split targets) alongside the pre-split boundary set.
fn sharded_store(
    dir: &std::path::Path,
    choice: IndexChoice,
    bulk: &[(Key, Value)],
    ops: &[(Key, Value)],
) -> (DurableShardedRouter, Vec<Key>, usize) {
    let boundaries = vec![bulk[bulk.len() / 3].0, bulk[2 * bulk.len() / 3].0];
    let mut router = DurableShardedRouter::create(
        dir,
        BLOCK,
        choice,
        WriteBufferConfig::default(),
        boundaries.clone(),
    )
    .expect("create sharded store");
    router.bulk_load(bulk).expect("bulk load");
    for &(k, v) in ops {
        router.insert(k, v).expect("insert");
    }
    // Group-commit: the ops are acknowledged, so the kill must lose none.
    router.sync_wal().expect("sync");
    (router, boundaries, 1)
}

/// The shard-dir names currently on disk (sorted), for orphan-sweep checks.
fn shard_dirs_on_disk(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("shard-"))
        .collect();
    names.sort();
    names
}

/// Exact oracle equality through the sharded router's read surface.
fn assert_sharded_matches_oracle(
    router: &DurableShardedRouter,
    oracle: &BTreeMap<Key, Value>,
    label: &str,
) {
    for (&k, &v) in oracle {
        assert_eq!(
            router.lookup(k).expect("lookup"),
            Some(v),
            "{label}: key {k} must answer its newest value"
        );
    }
    let (&first, _) = oracle.iter().next().expect("oracle is never empty");
    let want: Vec<(Key, Value)> = oracle.iter().take(200).map(|(&k, &v)| (k, v)).collect();
    let mut got = Vec::new();
    router.scan(first, 200, &mut got).expect("scan");
    assert_eq!(got, want, "{label}: scan stitched across recovered shards");
}

#[test]
fn mid_split_kill_before_commit_recovers_the_pre_split_boundaries() {
    let bulk = bulk_entries();
    let ops = op_stream(&bulk);
    let oracle = oracle_at(&bulk, &ops, OPS);
    for choice in IndexChoice::ALL_DESIGNS {
        let dir = scratch("splitpre", choice);
        let (mut router, boundaries, hot) = sharded_store(&dir, choice, &bulk, &ops);
        // The kill: the split dies after building both halves aside but
        // before the manifest rename — the commit never happened.
        router.split_shard(hot, SplitFault::CrashBeforeCommit).expect("split until the kill");
        drop(router);

        let (recovered, _) =
            DurableShardedRouter::reopen(&dir, BLOCK, WriteBufferConfig::default())
                .expect("reopen");
        assert_eq!(
            recovered.boundaries(),
            &boundaries[..],
            "{}: a pre-commit kill must recover the pre-split boundary set",
            choice.name()
        );
        assert_eq!(recovered.shard_count(), 3, "{}: still three shards", choice.name());
        assert_sharded_matches_oracle(&recovered, &oracle, choice.name());
        // The half-built generation-1 dirs are orphans; the reopen swept
        // them, leaving exactly the three committed shard dirs.
        assert_eq!(
            shard_dirs_on_disk(&dir),
            vec!["shard-0-0", "shard-0-1", "shard-0-2"],
            "{}: orphaned split halves must be swept",
            choice.name()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn mid_split_kill_after_commit_recovers_the_post_split_boundaries() {
    let bulk = bulk_entries();
    let ops = op_stream(&bulk);
    let oracle = oracle_at(&bulk, &ops, OPS);
    for choice in IndexChoice::ALL_DESIGNS {
        let dir = scratch("splitpost", choice);
        let (mut router, boundaries, hot) = sharded_store(&dir, choice, &bulk, &ops);
        // The kill: the manifest rename (the commit point) completed, but
        // the retired shard directory was never garbage-collected.
        let pivot =
            router.split_shard(hot, SplitFault::CrashAfterCommit).expect("split until the kill");
        drop(router);

        let (recovered, replayed) =
            DurableShardedRouter::reopen(&dir, BLOCK, WriteBufferConfig::default())
                .expect("reopen");
        let mut want = boundaries.clone();
        want.insert(hot, pivot);
        assert_eq!(
            recovered.boundaries(),
            &want[..],
            "{}: a post-commit kill must recover the post-split boundary set",
            choice.name()
        );
        assert_eq!(recovered.shard_count(), 4, "{}: four shards after the split", choice.name());
        // The two halves were checkpointed by the split; only the two
        // untouched shards may have WAL tails to replay.
        let _ = replayed;
        assert_sharded_matches_oracle(&recovered, &oracle, choice.name());
        // The retired middle shard dir is gone; its two generation-1
        // halves replaced it.
        assert_eq!(
            shard_dirs_on_disk(&dir),
            vec!["shard-0-0", "shard-0-2", "shard-1-0", "shard-1-1"],
            "{}: the retired shard dir must be swept",
            choice.name()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn completed_split_survives_a_clean_kill() {
    let bulk = bulk_entries();
    let ops = op_stream(&bulk);
    let oracle = oracle_at(&bulk, &ops, OPS);
    for choice in [IndexChoice::BTree, IndexChoice::Lipp, IndexChoice::HybridModelTree] {
        let dir = scratch("splitclean", choice);
        let (mut router, boundaries, hot) = sharded_store(&dir, choice, &bulk, &ops);
        let pivot = router.split_shard(hot, SplitFault::None).expect("split");
        assert!(pivot > boundaries[0] && pivot < boundaries[1], "pivot inside the hot shard");
        router.checkpoint().expect("checkpoint");
        drop(router);

        let (recovered, replayed) =
            DurableShardedRouter::reopen(&dir, BLOCK, WriteBufferConfig::default())
                .expect("reopen");
        assert_eq!(replayed, 0, "{}: clean checkpoint leaves no WAL tail", choice.name());
        assert_eq!(recovered.shard_count(), 4, "{}: the split persisted", choice.name());
        assert_sharded_matches_oracle(&recovered, &oracle, choice.name());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn transient_read_errors_during_reopen_are_retried() {
    let bulk = bulk_entries();
    let ops = op_stream(&bulk);
    let oracle = oracle_at(&bulk, &ops, OPS);
    for choice in IndexChoice::ALL_DESIGNS {
        let dir = scratch("transient", choice);
        let mut front =
            create_durable_index(&dir, BLOCK, choice, WriteBufferConfig::default(), None)
                .expect("create");
        front.bulk_load(&bulk).expect("bulk load");
        for &(k, v) in &ops {
            front.insert(k, v).expect("insert");
        }
        front.checkpoint(true).expect("clean checkpoint");
        drop(front);

        let plan = FaultPlan::new();
        plan.transient_read_errors(3);
        let (recovered, replayed) =
            reopen_durable_index(&dir, BLOCK, WriteBufferConfig::default(), Some(plan.clone()))
                .expect("reopen rides out the EIO burst");
        assert_eq!(replayed, 0, "{}: nothing to replay", choice.name());
        assert_matches_oracle(&recovered, &oracle, choice.name());
        let stats = disk_of(&recovered).snapshot();
        assert!(
            stats.io_retries >= 3,
            "{}: the retries must be visible in IoStats (got {})",
            choice.name(),
            stats.io_retries
        );
        assert_eq!(plan.transients_served(), 3, "{}: the burst was consumed", choice.name());
        std::fs::remove_dir_all(&dir).ok();
    }
}
