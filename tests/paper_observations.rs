//! Integration tests asserting that the paper's key observations hold, in
//! shape, on the scaled-down reproduction. Each test cites the observation
//! (O-number) or take-away (K-number) it checks.

use lidx_experiments::experiments::Scale;
use lidx_experiments::runner::{run_workload, IndexChoice, RunConfig};
use lidx_storage::DeviceModel;
use lidx_workloads::{Dataset, Workload, WorkloadKind, WorkloadSpec};

fn scale() -> Scale {
    Scale { keys: 60_000, ops: 800, bulk_keys: 20_000, seed: 11, threads: 2, dataset_path: None }
}

fn search_workload(dataset: Dataset, kind: WorkloadKind) -> Workload {
    let s = scale();
    let keys = dataset.generate_keys(s.keys, s.seed);
    Workload::build(&keys, WorkloadSpec::new(kind, s.ops, 0))
}

fn mixed_workload(dataset: Dataset, kind: WorkloadKind) -> Workload {
    let s = scale();
    let keys = dataset.generate_keys(s.keys, s.seed);
    Workload::build(&keys, WorkloadSpec::new(kind, s.ops, s.bulk_keys))
}

fn hdd() -> RunConfig {
    RunConfig { device: DeviceModel::hdd(), ..Default::default() }
}

/// O4/O5: for Scan-Only workloads the B+-tree outperforms every learned
/// index, and ALEX / LIPP are the worst because of their scattered layouts.
#[test]
fn btree_wins_scans_and_alex_lipp_lose_them() {
    for dataset in Dataset::REPRESENTATIVE {
        let w = search_workload(dataset, WorkloadKind::ScanOnly);
        let btree = run_workload(IndexChoice::BTree, &hdd(), &w);
        // FITing-tree and PGM store scans as densely as the B+-tree does, so
        // they end up within a block of it (the paper's Table 4 shows the
        // same proximity); ALEX and LIPP are the ones that fall behind.
        for choice in [IndexChoice::Fiting, IndexChoice::Pgm, IndexChoice::Alex, IndexChoice::Lipp]
        {
            let other = run_workload(choice, &hdd(), &w);
            assert!(
                btree.avg_reads_per_op <= other.avg_reads_per_op + 1.0,
                "{dataset:?}: B+-tree ({:.2} blk) must stay within one block of {choice:?} ({:.2} blk)",
                btree.avg_reads_per_op,
                other.avg_reads_per_op
            );
        }
        let alex = run_workload(IndexChoice::Alex, &hdd(), &w);
        let lipp = run_workload(IndexChoice::Lipp, &hdd(), &w);
        assert!(
            alex.avg_reads_per_op > btree.avg_reads_per_op
                && lipp.avg_reads_per_op > btree.avg_reads_per_op,
            "{dataset:?}: ALEX ({:.2}) and LIPP ({:.2}) must scan more blocks than the B+-tree ({:.2})",
            alex.avg_reads_per_op,
            lipp.avg_reads_per_op,
            btree.avg_reads_per_op
        );
    }
}

/// O6: PGM significantly outperforms every other index on Write-Only
/// workloads thanks to its LSM-style insert path.
#[test]
fn pgm_dominates_write_only() {
    for dataset in [Dataset::Ycsb, Dataset::Fb] {
        let w = mixed_workload(dataset, WorkloadKind::WriteOnly);
        let pgm = run_workload(IndexChoice::Pgm, &hdd(), &w);
        for choice in
            [IndexChoice::BTree, IndexChoice::Fiting, IndexChoice::Alex, IndexChoice::Lipp]
        {
            let other = run_workload(choice, &hdd(), &w);
            assert!(
                pgm.throughput() > other.throughput(),
                "{dataset:?}: PGM ({:.1} ops/s) must beat {choice:?} ({:.1} ops/s) on write-only",
                pgm.throughput(),
                other.throughput()
            );
        }
    }
}

/// O7: apart from PGM, the B+-tree clearly outperforms the learned indexes
/// when every operation is an insert.
#[test]
fn btree_beats_alex_and_lipp_on_writes() {
    let w = mixed_workload(Dataset::Osm, WorkloadKind::WriteOnly);
    let btree = run_workload(IndexChoice::BTree, &hdd(), &w);
    for choice in [IndexChoice::Alex, IndexChoice::Lipp] {
        let other = run_workload(choice, &hdd(), &w);
        assert!(
            btree.throughput() > other.throughput(),
            "B+-tree ({:.1}) must beat {choice:?} ({:.1}) on write-only",
            btree.throughput(),
            other.throughput()
        );
    }
}

/// O13–O15 / K2: once inner nodes are memory-resident the B+-tree fetches no
/// more blocks than any learned index for any workload we test here.
#[test]
fn btree_wins_with_memory_resident_inner_nodes() {
    let cfg = RunConfig { memory_resident_inner: true, ..hdd() };
    for dataset in Dataset::REPRESENTATIVE {
        for kind in [WorkloadKind::LookupOnly, WorkloadKind::ScanOnly] {
            let w = search_workload(dataset, kind);
            let btree = run_workload(IndexChoice::BTree, &cfg, &w);
            for choice in [IndexChoice::Fiting, IndexChoice::Pgm, IndexChoice::Alex] {
                let other = run_workload(choice, &cfg, &w);
                assert!(
                    btree.avg_reads_per_op <= other.avg_reads_per_op + 0.3,
                    "{dataset:?}/{kind:?}: B+-tree ({:.2} blk) vs {choice:?} ({:.2} blk)",
                    btree.avg_reads_per_op,
                    other.avg_reads_per_op
                );
            }
        }
    }
}

/// O11/O16 / K3: PGM has the smallest storage footprint and LIPP the largest;
/// LIPP and ALEX take more space than the B+-tree.
#[test]
fn storage_ranking_matches_the_paper() {
    let w = mixed_workload(Dataset::Fb, WorkloadKind::WriteOnly);
    let footprint = |c: IndexChoice| run_workload(c, &hdd(), &w).storage_blocks;
    let btree = footprint(IndexChoice::BTree);
    let pgm = footprint(IndexChoice::Pgm);
    let alex = footprint(IndexChoice::Alex);
    let lipp = footprint(IndexChoice::Lipp);
    assert!(pgm <= btree * 2, "PGM ({pgm} blocks) must be in the B+-tree's ballpark ({btree})");
    assert!(lipp > btree, "LIPP ({lipp} blocks) must exceed the B+-tree ({btree})");
    assert!(alex > btree, "ALEX ({alex} blocks) must exceed the B+-tree ({btree})");
    assert!(lipp > pgm && lipp > alex, "LIPP must have the largest footprint");
}

/// O17 / K4: growing the block size reduces fetched blocks for the B+-tree
/// and the PLA-based indexes but does not help LIPP.
#[test]
fn block_size_helps_everyone_but_lipp() {
    let w = search_workload(Dataset::Fb, WorkloadKind::LookupOnly);
    let at = |choice: IndexChoice, bs: usize| {
        let cfg = RunConfig { block_size: bs, ..hdd() };
        run_workload(choice, &cfg, &w).avg_reads_per_op
    };
    for choice in [IndexChoice::BTree, IndexChoice::Fiting, IndexChoice::Pgm] {
        let small = at(choice, 1024);
        let large = at(choice, 16 * 1024);
        assert!(
            large < small,
            "{choice:?}: 16 KB blocks ({large:.2}) must fetch fewer blocks than 1 KB ({small:.2})"
        );
    }
    let lipp_small = at(IndexChoice::Lipp, 4096);
    let lipp_large = at(IndexChoice::Lipp, 16 * 1024);
    assert!(
        lipp_large > lipp_small - 0.8,
        "LIPP barely benefits from larger blocks ({lipp_small:.2} -> {lipp_large:.2})"
    );
}

/// O18 / K5: the B+-tree's p99 latency is no worse than the learned indexes'
/// on the Lookup-Only workload.
#[test]
fn btree_tail_latency_is_smallest_for_lookups() {
    let w = search_workload(Dataset::Osm, WorkloadKind::LookupOnly);
    let btree = run_workload(IndexChoice::BTree, &hdd(), &w);
    for choice in [IndexChoice::Alex, IndexChoice::Lipp] {
        let other = run_workload(choice, &hdd(), &w);
        assert!(
            btree.latency.p99_ns <= other.latency.p99_ns,
            "B+-tree p99 ({}) must not exceed {choice:?} p99 ({})",
            btree.latency.p99_ns,
            other.latency.p99_ns
        );
    }
}

/// §6.6: with no buffer LIPP fetches the fewest blocks of the learned indexes
/// on easy data, but a moderately sized LRU buffer flips the ranking because
/// LIPP's huge upper-level nodes cache poorly.
#[test]
fn buffer_pool_helps_small_node_indexes_more_than_lipp() {
    let w = search_workload(Dataset::Ycsb, WorkloadKind::LookupOnly);
    let at = |choice: IndexChoice, buffer: usize| {
        let cfg = RunConfig { buffer_blocks: buffer, ..hdd() };
        run_workload(choice, &cfg, &w).avg_reads_per_op
    };
    let btree_gain = at(IndexChoice::BTree, 0) - at(IndexChoice::BTree, 64);
    let pgm_gain = at(IndexChoice::Pgm, 0) - at(IndexChoice::Pgm, 64);
    let lipp_gain = at(IndexChoice::Lipp, 0) - at(IndexChoice::Lipp, 64);
    assert!(btree_gain > 0.5, "a 64-block buffer must absorb the B+-tree's inner levels");
    assert!(pgm_gain > 0.3, "PGM's small upper levels must benefit from the buffer");
    assert!(
        lipp_gain <= btree_gain + 0.2,
        "LIPP must not benefit more than the B+-tree (lipp {lipp_gain:.2} vs btree {btree_gain:.2})"
    );
}

/// §4.1: ALEX Layout#2 (separate inner/data files) fetches no more blocks
/// than Layout#1 for lookups.
#[test]
fn alex_layout2_is_no_worse_than_layout1() {
    let w = search_workload(Dataset::Fb, WorkloadKind::LookupOnly);
    let l1 = run_workload(IndexChoice::AlexLayout1, &hdd(), &w);
    let l2 = run_workload(IndexChoice::Alex, &hdd(), &w);
    assert!(
        l2.avg_reads_per_op <= l1.avg_reads_per_op + 0.05,
        "Layout#2 ({:.2}) must not fetch more blocks than Layout#1 ({:.2})",
        l2.avg_reads_per_op,
        l1.avg_reads_per_op
    );
}
