//! The sharded-router oracle suite: every `IndexChoice` design runs behind
//! a [`ShardedIndex`] (each shard a fresh instance of the design on its own
//! disk, fronted by its own staging buffer) and must stay indistinguishable
//! from a flat `BTreeMap` oracle through the full `IndexRead`/`IndexWrite`
//! surface:
//!
//! * **Routing** — `lookup` / `lookup_batch` answers (in caller order, with
//!   hits and misses interleaved) must match the oracle regardless of which
//!   shard owns each key.
//! * **Scan stitching** — scans are pinned across *every* shard boundary:
//!   for each boundary the suite scans from just below it through the next
//!   shard, and additionally from inside shard `k` far enough to end in
//!   shard `k + 2`, so each result must stitch at least two boundary
//!   crossings seamlessly. Empty shards and single-key shards are exercised
//!   with hand-picked boundary sets.
//! * **Write routing** — `insert` / `insert_batch` / staged `stage_batch`
//!   entries route by boundary and stay visible before and after `flush`.
//!
//! Deterministic cases pin the edge geometry; a proptest sweep generates
//! random bulk sets, boundary picks and probe/range mixes.

use std::collections::BTreeMap;

use lidx_core::{
    DiskIndex, Entry, IndexRead, IndexWrite, Key, ShardedIndex, ShardedIndexConfig,
    ShardedWriteBufferConfig, Value,
};
use lidx_experiments::runner::{IndexChoice, RunConfig};
use proptest::prelude::*;

type Router = ShardedIndex<Box<dyn DiskIndex>>;

fn router_for(choice: IndexChoice, boundaries: Vec<Key>) -> Router {
    let cfg = RunConfig::default();
    let config = ShardedIndexConfig {
        shards: boundaries.len() + 1,
        buffer: ShardedWriteBufferConfig { capacity: 64, drain: 16, shards: 2 },
    };
    ShardedIndex::with_boundaries(
        Box::new(move || Ok(choice.build(cfg.make_disk()))),
        config,
        boundaries,
    )
    .expect("build router")
}

/// Checks the full read surface of `router` against `oracle`: per-key
/// lookups (hits and misses), a caller-order `lookup_batch`, and scans
/// crossing every shard boundary — one starting just below each boundary,
/// and one starting a shard earlier so the result stitches two boundaries.
fn assert_matches_oracle(choice: IndexChoice, router: &Router, oracle: &BTreeMap<Key, Value>) {
    // Per-key hits, plus guaranteed misses just beside present keys.
    let mut probes: Vec<Key> = oracle.keys().copied().collect();
    for &k in oracle.keys().take(64) {
        probes.push(k.wrapping_add(1));
        probes.push(k.wrapping_sub(1));
    }
    probes.push(0);
    probes.push(Key::MAX);
    for &k in &probes {
        assert_eq!(
            router.lookup(k).expect("lookup"),
            oracle.get(&k).copied(),
            "{choice:?} lookup({k})"
        );
    }
    // Caller-order batch with hits and misses interleaved (reversed order
    // proves answers are scattered back, not returned shard-by-shard).
    probes.reverse();
    let mut answers = Vec::new();
    router.lookup_batch(&probes, &mut answers).expect("lookup_batch");
    assert_eq!(answers.len(), probes.len(), "{choice:?} batch length");
    for (i, &k) in probes.iter().enumerate() {
        assert_eq!(answers[i], oracle.get(&k).copied(), "{choice:?} batch lookup({k})");
    }
    // Scans pinned across every boundary: start just below boundary b and
    // span into the next shard, and start one shard earlier (ending in
    // shard k + 2) so the scan must stitch two crossings.
    let boundaries = router.boundaries();
    let mut ranges: Vec<(Key, usize)> = vec![(0, oracle.len() + 8)];
    for (i, &b) in boundaries.iter().enumerate() {
        ranges.push((b.saturating_sub(3), 16));
        ranges.push((b, 4));
        let prev = if i == 0 { 0 } else { boundaries[i - 1] };
        ranges.push((prev, oracle.len() + 8)); // ends past boundary i: >= 2 crossings
    }
    let mut out = Vec::new();
    for &(start, count) in &ranges {
        let n = router.scan(start, count, &mut out).expect("scan");
        assert_eq!(n, out.len(), "{choice:?} scan({start}, {count}) count");
        let expect: Vec<Entry> = oracle.range(start..).take(count).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(out, expect, "{choice:?} scan({start}, {count})");
    }
    // The same ranges through scan_batch must agree entry-for-entry.
    let mut batches = Vec::new();
    router.scan_batch(&ranges, &mut batches).expect("scan_batch");
    for (i, &(start, count)) in ranges.iter().enumerate() {
        let expect: Vec<Entry> = oracle.range(start..).take(count).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(batches[i], expect, "{choice:?} scan_batch({start}, {count})");
    }
}

/// Bulk entries spread over a wide keyspace with deliberate clusters, so
/// quantile boundaries land in interesting places.
fn dataset() -> Vec<Entry> {
    (0..900u64)
        .map(|i| i * 101 + (i % 17) * 3 + 5)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|k| (k, k * 2 + 1))
        .collect()
}

#[test]
fn every_design_matches_the_oracle_across_shard_boundaries() {
    let entries = dataset();
    for choice in IndexChoice::ALL_DESIGNS {
        // Boundaries at the 1/3 and 2/3 keys plus one far beyond the data,
        // leaving the last shard empty.
        let b1 = entries[entries.len() / 3].0;
        let b2 = entries[2 * entries.len() / 3].0;
        let far = entries.last().unwrap().0 + 10_000;
        let mut router = router_for(choice, vec![b1, b2, far]);
        router.bulk_load(&entries).expect("bulk load");
        let mut oracle: BTreeMap<Key, Value> = entries.iter().copied().collect();
        assert_matches_oracle(choice, &router, &oracle);

        // insert / insert_batch route by boundary, including into the empty
        // tail shard and exactly onto a boundary key.
        router.insert(far, 7).expect("insert");
        oracle.insert(far, 7);
        let batch: Vec<Entry> = vec![(b1, 11), (b2 - 1, 13), (far + 3, 17), (b1 - 1, 19)];
        router.insert_batch(&batch).expect("insert_batch");
        oracle.extend(batch.iter().copied());
        assert_matches_oracle(choice, &router, &oracle);

        // Staged writes are visible through the overlay before the drain,
        // and survive the flush.
        let staged: Vec<Entry> = (0..40u64).map(|i| (i * 997 + 2, i + 100)).collect();
        router.stage_batch(&staged).expect("stage_batch");
        oracle.extend(staged.iter().copied());
        assert_matches_oracle(choice, &router, &oracle);
        router.flush().expect("flush");
        assert_matches_oracle(choice, &router, &oracle);
    }
}

#[test]
fn empty_and_single_key_shards_stay_transparent() {
    for choice in IndexChoice::ALL_DESIGNS {
        // Shard 0: empty (nothing below 100). Shard 1: exactly one key
        // (100). Shard 2: empty (nothing in [101, 500)). Shard 3: the rest.
        let entries: Vec<Entry> =
            std::iter::once((100u64, 1)).chain((0..50u64).map(|i| (500 + i * 7, i))).collect();
        let mut router = router_for(choice, vec![100, 101, 500]);
        router.bulk_load(&entries).expect("bulk load");
        assert_eq!(router.shard_count(), 4);
        assert_eq!(router.shard_lens(), vec![0, 1, 0, 50], "{choice:?} shard fill");
        let oracle: BTreeMap<Key, Value> = entries.iter().copied().collect();
        assert_matches_oracle(choice, &router, &oracle);

        // A scan from key 0 crosses empty shard 0, the single-key shard,
        // empty shard 2 and lands in shard 3 — three boundary stitches.
        let mut out = Vec::new();
        let n = router.scan(0, 5, &mut out).expect("scan");
        assert_eq!(n, 5, "{choice:?} cross-empty scan");
        assert_eq!(out[0], (100, 1), "{choice:?} single-key shard served first");
        assert_eq!(out[1].0, 500, "{choice:?} stitched into shard 3");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Random bulk sets behind random boundary picks must match the oracle
    /// for every design, for random probes and boundary-straddling ranges,
    /// before and after a random staged batch.
    #[test]
    fn sharded_router_matches_oracle(
        bulk_keys in proptest::collection::btree_set(0u64..300_000, 20..160),
        boundary_picks in proptest::collection::vec(0usize..1_000, 1..5),
        staged_keys in proptest::collection::btree_set(0u64..320_000, 0..40),
    ) {
        let entries: Vec<Entry> = bulk_keys.iter().map(|&k| (k, k ^ 0xABCD)).collect();
        // Boundary picks index into the bulk keys (dedup keeps them strictly
        // increasing); a pick may isolate a single key or leave a shard empty.
        let mut boundaries: Vec<Key> =
            boundary_picks.iter().map(|&p| entries[p % entries.len()].0).collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        for choice in IndexChoice::ALL_DESIGNS {
            let mut router = router_for(choice, boundaries.clone());
            router.bulk_load(&entries).expect("bulk load");
            let mut oracle: BTreeMap<Key, Value> = entries.iter().copied().collect();
            assert_matches_oracle(choice, &router, &oracle);
            let staged: Vec<Entry> = staged_keys.iter().map(|&k| (k, k.rotate_left(7))).collect();
            router.stage_batch(&staged).expect("stage_batch");
            oracle.extend(staged.iter().copied());
            assert_matches_oracle(choice, &router, &oracle);
            router.flush().expect("flush");
            assert_matches_oracle(choice, &router, &oracle);
        }
    }
}
