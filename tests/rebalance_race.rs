//! The rebalance-race oracle suite: writers and readers race a
//! [`ShardedIndex`] while a rebalancer thread splits hot shards and merges
//! cold neighbours *online*. Mirroring `racing_writer_consistency.rs`,
//! three properties are checked while the shard map churns underneath:
//!
//! * **No torn reads** — every value observed mid-split is one some writer
//!   legitimately staged (values encode their key and version, so a torn
//!   read or a half-moved entry cannot decode).
//! * **Per-reader monotonic visibility** — once a reader has seen version
//!   `n` of a key it never sees an older version, even when the key's
//!   owning shard is retired and rebuilt mid-stream.
//! * **Linearizability by final state** — after the race the router must
//!   equal a mutexed `BTreeMap` oracle exactly (lookups and a full scan),
//!   i.e. `lost == 0`: no staged key may vanish into a retired shard.
//!
//! Races rarely surface in a single debug run, so CI additionally executes
//! this test under `cargo test --release` (see .github/workflows/ci.yml).

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use lidx_core::{
    DiskIndex, Entry, IndexRead, IndexWrite, Key, ShardedIndex, ShardedIndexConfig,
    ShardedWriteBufferConfig, Value,
};
use lidx_experiments::runner::{IndexChoice, RunConfig};
use lidx_storage::DeviceModel;

const WRITERS: usize = 3;
const READERS: usize = 2;
const ROUNDS: usize = 240;
const READER_OPS: usize = 300;
const REBALANCES: usize = 12;

type Router = ShardedIndex<Box<dyn DiskIndex>>;

/// A tiny deterministic PRNG (splitmix64) so each thread gets its own
/// reproducible operation stream without sharing any state.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dataset() -> Vec<Entry> {
    (0..6_000u64)
        .map(|i| i * 13 + (i % 31) * 5 + 1)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|k| (k, k + 1))
        .collect()
}

/// The value writer threads stage for `key` at `version` (1-based); the
/// encoding is invertible so any observed value can be classified.
fn versioned(key: Key, version: u64) -> Value {
    key.wrapping_mul(31).wrapping_add(version)
}

/// `Some(0)` = bulk-loaded payload, `Some(v)` = writer version `v`,
/// `None` = torn garbage no writer ever produced.
fn version_of(key: Key, value: Value) -> Option<u64> {
    if value == key + 1 {
        return Some(0);
    }
    let v = value.wrapping_sub(key.wrapping_mul(31));
    (v >= 1 && v <= ROUNDS as u64).then_some(v)
}

/// The fresh keys writer `w` owns, in the order it stages them. Disjoint
/// across writers by construction and above every bulk key, so they pile
/// into the top shard and make it the rebalancer's split target.
fn fresh_key(max_bulk: Key, w: usize, i: usize) -> Key {
    max_bulk + 1_000 + ((i * WRITERS + w) as u64) * 17
}

fn build_router(choice: IndexChoice, entries: &[Entry]) -> Router {
    let cfg = RunConfig { device: DeviceModel::custom("flat", 1, 7, 1), ..Default::default() };
    let config = ShardedIndexConfig {
        shards: 4,
        buffer: ShardedWriteBufferConfig { capacity: 96, drain: 32, shards: 2 },
    };
    let sample: Vec<Key> = entries.iter().map(|&(k, _)| k).collect();
    let mut router = ShardedIndex::with_sampled_boundaries(
        Box::new(move || Ok(choice.build(cfg.make_disk()))),
        config,
        &sample,
    )
    .expect("build router");
    router.bulk_load(entries).expect("bulk load");
    router
}

#[test]
fn racing_readers_and_writers_agree_with_the_oracle_across_splits_and_merges() {
    let entries = dataset();
    let max_bulk = entries.last().unwrap().0;

    for choice in IndexChoice::ALL_DESIGNS {
        let router = build_router(choice, &entries);
        let oracle: Mutex<BTreeMap<Key, Value>> = Mutex::new(entries.iter().copied().collect());

        let router = &router;
        let oracle = &oracle;
        let entries = &entries;
        std::thread::scope(|s| {
            // The rebalancer: splits the currently fullest shard, and every
            // third rebalance merges the two leftmost shards. The shard map
            // keeps moving while readers and writers race it.
            s.spawn(move || {
                let mut performed = 0usize;
                while performed < REBALANCES {
                    let lens = router.shard_lens();
                    let hot = lens.iter().enumerate().max_by_key(|(_, &l)| l).map_or(0, |(s, _)| s);
                    if router.split_shard(hot, None).is_ok() {
                        performed += 1;
                    }
                    if performed.is_multiple_of(3) && router.shard_count() > 3 {
                        router.merge_shards(0).expect("merge");
                    }
                    std::thread::yield_now();
                }
            });
            for w in 0..WRITERS {
                s.spawn(move || {
                    let mut rng = 0xBEEF_0000_u64 ^ ((w as u64 + 1) << 40);
                    for i in 0..ROUNDS {
                        let version = i as u64 + 1;
                        let r = splitmix(&mut rng);
                        // Mostly fresh keys; every fourth round upserts an
                        // owned bulk key (disjoint ownership across writers).
                        let key = if r.is_multiple_of(4) {
                            let slot = (r as usize / 4) % (entries.len() / WRITERS);
                            entries[slot * WRITERS + w].0
                        } else {
                            fresh_key(max_bulk, w, i)
                        };
                        let value = versioned(key, version);
                        if r.is_multiple_of(3) {
                            router.stage_batch(&[(key, value)]).expect("stage_batch");
                        } else {
                            router.stage(key, value).expect("stage");
                        }
                        oracle.lock().unwrap().insert(key, value);
                    }
                });
            }
            for t in 0..READERS {
                s.spawn(move || {
                    let mut rng = 0xFEED_0000_u64 ^ ((t as u64 + 1) << 40);
                    let mut seen: HashMap<Key, u64> = HashMap::new();
                    let mut out = Vec::new();
                    for _ in 0..READER_OPS {
                        let r = splitmix(&mut rng);
                        if r % 5 == 4 {
                            // Scans race the boundary churn: results must
                            // stay sorted and every value must decode.
                            let start = splitmix(&mut rng) % (max_bulk + 2_000);
                            let n =
                                router.scan(start, (r % 48 + 1) as usize, &mut out).expect("scan");
                            assert_eq!(out.len(), n);
                            assert!(out.windows(2).all(|p| p[0].0 < p[1].0), "{choice:?} sorted");
                            for &(k, v) in &out {
                                assert!(
                                    version_of(k, v).is_some(),
                                    "{choice:?} reader {t}: torn scan value {v} for key {k}"
                                );
                            }
                        } else {
                            let key = if r.is_multiple_of(2) {
                                entries[(r as usize / 8) % entries.len()].0
                            } else {
                                let w = (r as usize / 8) % WRITERS;
                                fresh_key(max_bulk, w, (r as usize / 64) % ROUNDS)
                            };
                            match router.lookup(key).expect("lookup") {
                                None => assert!(
                                    entries.binary_search_by_key(&key, |e| e.0).is_err(),
                                    "{choice:?} reader {t}: bulk key {key} vanished mid-rebalance"
                                ),
                                Some(v) => {
                                    let version = version_of(key, v).unwrap_or_else(|| {
                                        panic!(
                                            "{choice:?} reader {t}: torn value {v} for key {key}"
                                        )
                                    });
                                    let last = seen.entry(key).or_insert(0);
                                    assert!(
                                        version >= *last,
                                        "{choice:?} reader {t}: key {key} regressed \
                                         from version {last} to {version}"
                                    );
                                    *last = version;
                                }
                            }
                        }
                    }
                });
            }
        });

        // The shard map must actually have churned while the race ran.
        assert!(router.splits() >= 1, "{choice:?}: no online split happened");
        assert!(router.merges() >= 1, "{choice:?}: no online merge happened");

        // Linearizability by final state: flush, then every oracle key must
        // answer with its newest value and a full scan must match exactly —
        // lost == 0 across every retired shard.
        router.flush().expect("final flush");
        let oracle = oracle.lock().unwrap();
        let keys: Vec<Key> = oracle.keys().copied().collect();
        let mut answers = Vec::new();
        router.lookup_batch(&keys, &mut answers).expect("final lookups");
        let lost = oracle.values().enumerate().filter(|&(i, &v)| answers[i] != Some(v)).count();
        assert_eq!(lost, 0, "{choice:?}: {lost} keys lost or stale after rebalances");
        let mut scanned = Vec::new();
        let n = router.scan(0, oracle.len() + 16, &mut scanned).expect("final scan");
        assert_eq!(n, oracle.len(), "{choice:?} final scan length");
        let expect: Vec<Entry> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(scanned, expect, "{choice:?} final scan contents");
    }
}

#[test]
fn final_state_is_independent_of_rebalance_schedule() {
    // Writer-owned keys make the final state deterministic: a run with no
    // rebalances and a run with aggressive split/merge churn must converge
    // to identical contents.
    let entries = dataset();
    let max_bulk = entries.last().unwrap().0;
    for choice in [IndexChoice::BTree, IndexChoice::Alex, IndexChoice::HybridModelTree] {
        let run = |rebalances: usize| -> Vec<Entry> {
            let router = build_router(choice, &entries);
            let router = &router;
            std::thread::scope(|s| {
                for w in 0..WRITERS {
                    s.spawn(move || {
                        for i in 0..ROUNDS {
                            let key = fresh_key(max_bulk, w, i);
                            router.stage(key, versioned(key, i as u64 + 1)).expect("stage");
                        }
                    });
                }
                s.spawn(move || {
                    for r in 0..rebalances {
                        let lens = router.shard_lens();
                        let hot =
                            lens.iter().enumerate().max_by_key(|(_, &l)| l).map_or(0, |(s, _)| s);
                        router.split_shard(hot, None).expect("split");
                        if r % 2 == 1 && router.shard_count() > 2 {
                            router.merge_shards(0).expect("merge");
                        }
                    }
                });
            });
            router.flush().expect("flush");
            let mut out = Vec::new();
            router.scan(0, entries.len() + WRITERS * ROUNDS, &mut out).expect("full scan");
            out
        };
        let quiet = run(0);
        let churned = run(8);
        assert_eq!(quiet, churned, "{choice:?}: final state depends on the rebalance schedule");
    }
}
