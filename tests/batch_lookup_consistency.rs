//! `lookup_batch` ≡ sequential `lookup`, for every index design.
//!
//! The batched lookup API promises bit-for-bit the answers of a per-key
//! loop, for any probe set — hits, misses, duplicates, unsorted input —
//! regardless of whether the index uses the default loop implementation or
//! a specialised override (B+-tree leaf-run sharing, PGM single-pass run +
//! cached data blocks). These tests pin that contract for all seven
//! `IndexChoice` designs, deterministically and under proptest-generated
//! workloads, and additionally assert the zero-copy invariant: lookups and
//! batched lookups never copy a block into a caller buffer.

use std::collections::BTreeMap;

use lidx_core::{DiskIndex, Entry, Key, Value};
use lidx_experiments::runner::{IndexChoice, RunConfig};
use proptest::prelude::*;

fn build_loaded(choice: IndexChoice, entries: &[Entry]) -> Box<dyn DiskIndex> {
    let disk = RunConfig::default().make_disk();
    let mut index = choice.build(disk);
    index.bulk_load(entries).expect("bulk load");
    index
}

/// Asserts batch == sequential on `probes` and returns the batched answers.
fn check_equivalence(
    index: &dyn DiskIndex,
    choice: IndexChoice,
    probes: &[Key],
) -> Vec<Option<Value>> {
    let mut batched = Vec::new();
    index.lookup_batch(probes, &mut batched).expect("lookup_batch");
    assert_eq!(batched.len(), probes.len(), "{choice:?} answer count");
    for (i, &p) in probes.iter().enumerate() {
        assert_eq!(batched[i], index.lookup(p).expect("lookup"), "{choice:?} probe {p}");
    }
    batched
}

#[test]
fn batch_matches_sequential_for_every_design() {
    let entries: Vec<Entry> = (0..20_000u64)
        .map(|i| i * 13 + (i % 19) * 5)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|k| (k, k + 1))
        .collect();
    let oracle: BTreeMap<Key, Value> = entries.iter().copied().collect();

    // Unsorted probes: interleaved hits, near-misses, extremes, duplicates.
    let mut probes: Vec<Key> = Vec::new();
    for &(k, _) in entries.iter().step_by(61) {
        probes.push(k);
        probes.push(k + 1);
    }
    probes.extend([0, u64::MAX, entries[40].0, entries[40].0, entries[40].0]);
    probes.reverse();

    for choice in IndexChoice::ALL_DESIGNS {
        let index = build_loaded(choice, &entries);
        let before = index.disk().snapshot();
        let batched = check_equivalence(&*index, choice, &probes);
        let delta = index.disk().snapshot().since(&before);
        assert_eq!(
            delta.bytes_copied, 0,
            "{choice:?} lookup/batch hot paths must never copy blocks"
        );
        assert!(delta.frames_pinned > 0, "{choice:?} reads must pin frames");
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(batched[i], oracle.get(&p).copied(), "{choice:?} oracle probe {p}");
        }
    }
}

#[test]
fn batch_matches_sequential_after_inserts() {
    // Inserts push keys through delta buffers / insert runs / gapped nodes,
    // so the batched path must agree with sequential reads against every
    // auxiliary structure, not just bulk-loaded data.
    let bulk: Vec<Entry> = (0..4_000u64).map(|i| (i * 10, i)).collect();
    let inserts: Vec<Entry> = (0..900u64).map(|i| (i * 40 + 7, 1_000_000 + i)).collect();
    let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
    for &(k, v) in &inserts {
        oracle.insert(k, v);
    }
    let probes: Vec<Key> =
        oracle.keys().step_by(17).copied().chain((0..50).map(|i| i * 123 + 1)).collect();

    for choice in IndexChoice::ALL_DESIGNS {
        let mut index = build_loaded(choice, &bulk);
        for &(k, v) in &inserts {
            index.insert(k, v).unwrap();
        }
        let batched = check_equivalence(&*index, choice, &probes);
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(batched[i], oracle.get(&p).copied(), "{choice:?} oracle probe {p}");
        }
    }
}

#[test]
fn empty_and_degenerate_batches() {
    for choice in IndexChoice::ALL_DESIGNS {
        let index = build_loaded(choice, &[(5, 6), (9, 10)]);
        let mut out = vec![Some(1), Some(2)];
        index.lookup_batch(&[], &mut out).unwrap();
        assert!(out.is_empty(), "{choice:?} empty batch must clear out");
        index.lookup_batch(&[9, 9, 9, 9], &mut out).unwrap();
        assert_eq!(out, vec![Some(10); 4], "{choice:?} all-duplicate batch");
        index.lookup_batch(&[u64::MAX], &mut out).unwrap();
        assert_eq!(out, vec![None], "{choice:?} single miss");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Property: for random bulk loads, random insert batches and random
    /// unsorted probe sets (with duplicates), `lookup_batch` returns exactly
    /// what per-key `lookup` returns, for every one of the seven designs.
    #[test]
    fn random_batches_match_sequential_lookups(
        bulk_keys in proptest::collection::btree_set(0u64..500_000, 30..300),
        insert_keys in proptest::collection::btree_set(0u64..500_000, 0..120),
        probes in proptest::collection::vec(0u64..600_000, 1..120),
    ) {
        let bulk: Vec<Entry> = bulk_keys.iter().map(|&k| (k, k + 1)).collect();
        let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
        let inserts: Vec<Entry> = insert_keys.iter().map(|&k| (k, k + 2)).collect();
        for &(k, v) in &inserts {
            oracle.insert(k, v);
        }
        // Probe both random keys and guaranteed hits (hits, misses,
        // duplicates, unsorted order all arise from the generator).
        let mut probes = probes;
        probes.extend(bulk_keys.iter().step_by(7));

        for choice in IndexChoice::ALL_DESIGNS {
            let mut index = build_loaded(choice, &bulk);
            for &(k, v) in &inserts {
                index.insert(k, v).unwrap();
            }
            let mut batched = Vec::new();
            index.lookup_batch(&probes, &mut batched).expect("lookup_batch");
            prop_assert_eq!(batched.len(), probes.len());
            for (i, &p) in probes.iter().enumerate() {
                let sequential = index.lookup(p).expect("lookup");
                prop_assert_eq!(batched[i], sequential, "{:?} probe {}", choice, p);
                prop_assert_eq!(batched[i], oracle.get(&p).copied(), "{:?} oracle {}", choice, p);
            }
        }
    }
}
