//! `lookup_batch` ≡ sequential `lookup` and `scan_batch` ≡ sequential
//! `scan`, for every index design.
//!
//! The batched APIs promise bit-for-bit the answers of a per-item loop, for
//! any input — hits, misses, duplicates, unsorted probes, overlapping
//! ranges — regardless of whether the index uses the default loop
//! implementation or a specialised override (B+-tree leaf-run sharing and
//! sorted-range scans, PGM single-pass run + cached data blocks). These
//! tests pin that contract for all seven `IndexChoice` designs,
//! deterministically and under proptest-generated workloads, and
//! additionally assert two storage invariants: lookups and batched lookups
//! never copy a block into a caller buffer (zero-copy), and every design's
//! scan path announces itself with scan-class reads (scan tagging, the
//! admission signal of the scan-resistant buffer policies).

use std::collections::BTreeMap;

use lidx_core::{DiskIndex, Entry, IndexWrite, Key, Value};
use lidx_experiments::runner::{IndexChoice, RunConfig};
use proptest::prelude::*;

fn build_loaded(choice: IndexChoice, entries: &[Entry]) -> Box<dyn DiskIndex> {
    let disk = RunConfig::default().make_disk();
    let mut index = choice.build(disk);
    index.bulk_load(entries).expect("bulk load");
    index
}

/// Asserts batch == sequential on `probes` and returns the batched answers.
fn check_equivalence(
    index: &dyn DiskIndex,
    choice: IndexChoice,
    probes: &[Key],
) -> Vec<Option<Value>> {
    let mut batched = Vec::new();
    index.lookup_batch(probes, &mut batched).expect("lookup_batch");
    assert_eq!(batched.len(), probes.len(), "{choice:?} answer count");
    for (i, &p) in probes.iter().enumerate() {
        assert_eq!(batched[i], index.lookup(p).expect("lookup"), "{choice:?} probe {p}");
    }
    batched
}

#[test]
fn batch_matches_sequential_for_every_design() {
    let entries: Vec<Entry> = (0..20_000u64)
        .map(|i| i * 13 + (i % 19) * 5)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|k| (k, k + 1))
        .collect();
    let oracle: BTreeMap<Key, Value> = entries.iter().copied().collect();

    // Unsorted probes: interleaved hits, near-misses, extremes, duplicates.
    let mut probes: Vec<Key> = Vec::new();
    for &(k, _) in entries.iter().step_by(61) {
        probes.push(k);
        probes.push(k + 1);
    }
    probes.extend([0, u64::MAX, entries[40].0, entries[40].0, entries[40].0]);
    probes.reverse();

    for choice in IndexChoice::ALL_DESIGNS {
        let index = build_loaded(choice, &entries);
        let before = index.disk().snapshot();
        let batched = check_equivalence(&*index, choice, &probes);
        let delta = index.disk().snapshot().since(&before);
        assert_eq!(
            delta.bytes_copied, 0,
            "{choice:?} lookup/batch hot paths must never copy blocks"
        );
        assert!(delta.frames_pinned > 0, "{choice:?} reads must pin frames");
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(batched[i], oracle.get(&p).copied(), "{choice:?} oracle probe {p}");
        }
    }
}

#[test]
fn batch_matches_sequential_after_inserts() {
    // Inserts push keys through delta buffers / insert runs / gapped nodes,
    // so the batched path must agree with sequential reads against every
    // auxiliary structure, not just bulk-loaded data.
    let bulk: Vec<Entry> = (0..4_000u64).map(|i| (i * 10, i)).collect();
    let inserts: Vec<Entry> = (0..900u64).map(|i| (i * 40 + 7, 1_000_000 + i)).collect();
    let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
    for &(k, v) in &inserts {
        oracle.insert(k, v);
    }
    let probes: Vec<Key> =
        oracle.keys().step_by(17).copied().chain((0..50).map(|i| i * 123 + 1)).collect();

    for choice in IndexChoice::ALL_DESIGNS {
        let mut index = build_loaded(choice, &bulk);
        for &(k, v) in &inserts {
            index.insert(k, v).unwrap();
        }
        let batched = check_equivalence(&*index, choice, &probes);
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(batched[i], oracle.get(&p).copied(), "{choice:?} oracle probe {p}");
        }
    }
}

#[test]
fn empty_and_degenerate_batches() {
    for choice in IndexChoice::ALL_DESIGNS {
        let index = build_loaded(choice, &[(5, 6), (9, 10)]);
        let mut out = vec![Some(1), Some(2)];
        index.lookup_batch(&[], &mut out).unwrap();
        assert!(out.is_empty(), "{choice:?} empty batch must clear out");
        index.lookup_batch(&[9, 9, 9, 9], &mut out).unwrap();
        assert_eq!(out, vec![Some(10); 4], "{choice:?} all-duplicate batch");
        index.lookup_batch(&[u64::MAX], &mut out).unwrap();
        assert_eq!(out, vec![None], "{choice:?} single miss");
    }
}

#[test]
fn every_design_tags_its_scan_reads() {
    let entries: Vec<Entry> = (0..6_000u64).map(|i| (i * 7, i)).collect();
    for choice in IndexChoice::ALL_DESIGNS {
        let index = build_loaded(choice, &entries);
        let mut out = Vec::new();
        let before = index.disk().stats().scan_reads();
        index.scan(entries[100].0, 500, &mut out).expect("scan");
        assert_eq!(out.len(), 500, "{choice:?}");
        assert!(
            index.disk().stats().scan_reads() > before,
            "{choice:?} scan paths must issue scan-class reads"
        );
        // Point lookups must NOT be tagged as scans.
        let tagged = index.disk().stats().scan_reads();
        index.lookup(entries[3_000].0).expect("lookup");
        assert_eq!(
            index.disk().stats().scan_reads(),
            tagged,
            "{choice:?} lookups must stay point-class"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Property: for random bulk loads, random insert batches and random
    /// unsorted probe sets (with duplicates), `lookup_batch` returns exactly
    /// what per-key `lookup` returns, for every one of the seven designs.
    #[test]
    fn random_batches_match_sequential_lookups(
        bulk_keys in proptest::collection::btree_set(0u64..500_000, 30..300),
        insert_keys in proptest::collection::btree_set(0u64..500_000, 0..120),
        probes in proptest::collection::vec(0u64..600_000, 1..120),
    ) {
        let bulk: Vec<Entry> = bulk_keys.iter().map(|&k| (k, k + 1)).collect();
        let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
        let inserts: Vec<Entry> = insert_keys.iter().map(|&k| (k, k + 2)).collect();
        for &(k, v) in &inserts {
            oracle.insert(k, v);
        }
        // Probe both random keys and guaranteed hits (hits, misses,
        // duplicates, unsorted order all arise from the generator).
        let mut probes = probes;
        probes.extend(bulk_keys.iter().step_by(7));

        for choice in IndexChoice::ALL_DESIGNS {
            let mut index = build_loaded(choice, &bulk);
            for &(k, v) in &inserts {
                index.insert(k, v).unwrap();
            }
            let mut batched = Vec::new();
            index.lookup_batch(&probes, &mut batched).expect("lookup_batch");
            prop_assert_eq!(batched.len(), probes.len());
            for (i, &p) in probes.iter().enumerate() {
                let sequential = index.lookup(p).expect("lookup");
                prop_assert_eq!(batched[i], sequential, "{:?} probe {}", choice, p);
                prop_assert_eq!(batched[i], oracle.get(&p).copied(), "{:?} oracle {}", choice, p);
            }
        }
    }

    /// Property: for random bulk loads and random (possibly overlapping,
    /// unsorted, duplicate, empty or past-the-end) ranges, `scan_batch`
    /// returns exactly what a standalone `scan` returns for each range, and
    /// both match the oracle — for every design, including under a
    /// scan-resistant partitioned pool so the scan-class read path is the
    /// one being exercised.
    #[test]
    fn random_range_batches_match_sequential_scans(
        bulk_keys in proptest::collection::btree_set(0u64..200_000, 30..250),
        ranges in proptest::collection::vec((0u64..250_000, 0usize..80), 1..12),
    ) {
        let bulk: Vec<Entry> = bulk_keys.iter().map(|&k| (k, k + 1)).collect();
        let oracle: Vec<Entry> = bulk.clone();
        let cfg = RunConfig {
            buffer_blocks: 16,
            buffer_policy: lidx_storage::ReplacementPolicy::TwoQ,
            buffer_partitions: lidx_storage::PoolPartitions::InnerReserved { percent: 25 },
            ..Default::default()
        };
        for choice in IndexChoice::ALL_DESIGNS {
            let disk = cfg.make_disk();
            let mut index = choice.build(disk);
            index.bulk_load(&bulk).expect("bulk load");
            let mut batched: Vec<Vec<Entry>> = Vec::new();
            index.scan_batch(&ranges, &mut batched).expect("scan_batch");
            prop_assert_eq!(batched.len(), ranges.len());
            let mut single = Vec::new();
            for (i, &(start, count)) in ranges.iter().enumerate() {
                index.scan(start, count, &mut single).expect("scan");
                prop_assert_eq!(&batched[i], &single, "{:?} range {} diverges", choice, i);
                let from = oracle.partition_point(|&(k, _)| k < start);
                let expected: Vec<Entry> =
                    oracle[from..].iter().take(count).copied().collect();
                prop_assert_eq!(&batched[i], &expected, "{:?} oracle range {}", choice, i);
            }
        }
    }
}
