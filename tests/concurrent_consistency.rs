//! The cross-index concurrency oracle suite: for every `IndexChoice`
//! variant, 8 reader threads race random lookups and range scans against a
//! bulk-loaded (frozen) index, and every single answer must match an
//! in-memory `BTreeMap` oracle. Afterwards the disk's statistics must be
//! internally consistent — no torn or double-counted I/O counters.
//!
//! Races rarely surface in a single debug run, so CI additionally executes
//! this test under `cargo test --release` (see .github/workflows/ci.yml).

use std::collections::BTreeMap;

use lidx_core::{DiskIndex, Entry, IndexWrite, Key, Value};
use lidx_experiments::runner::{IndexChoice, RunConfig};
use lidx_storage::DeviceModel;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 400;

/// A tiny deterministic PRNG (splitmix64) so each thread gets its own
/// reproducible operation stream without sharing any state.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dataset() -> (Vec<Entry>, BTreeMap<Key, Value>) {
    let entries: Vec<Entry> = (0..25_000u64)
        .map(|i| i * 13 + (i % 31) * 5)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|k| (k, k + 1))
        .collect();
    let oracle = entries.iter().copied().collect();
    (entries, oracle)
}

#[test]
fn eight_reader_threads_agree_with_the_oracle_for_every_index() {
    let (entries, oracle) = dataset();
    let max_key = entries.last().unwrap().0;

    for choice in IndexChoice::ALL_DESIGNS {
        // A flat cost model (1 ns per device read, sequential or not) turns
        // the device-time counter into an exact read counter, which the
        // post-race consistency check below relies on.
        let cfg = RunConfig { device: DeviceModel::custom("flat", 1, 7, 1), ..Default::default() };
        let disk = cfg.make_disk();
        let mut index = choice.build(std::sync::Arc::clone(&disk));
        index.bulk_load(&entries).expect("bulk load");

        // Steady state: measure only the read phase.
        disk.stats().reset();
        disk.reset_access_state();

        let shared: &dyn DiskIndex = &*index;
        let entries = &entries;
        let oracle = &oracle;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    let mut rng = 0xDEAD_BEEF_u64 ^ ((t as u64 + 1) << 32);
                    let mut out = Vec::new();
                    for _ in 0..OPS_PER_THREAD {
                        let r = splitmix(&mut rng);
                        if r % 4 != 3 {
                            // Lookup: alternate stored keys and random probes
                            // (mostly absent).
                            let k = if r.is_multiple_of(2) {
                                entries[(r / 16) as usize % entries.len()].0
                            } else {
                                splitmix(&mut rng) % (max_key + 1000)
                            };
                            let got = shared.lookup(k).expect("lookup");
                            assert_eq!(
                                got,
                                oracle.get(&k).copied(),
                                "{choice:?} thread {t} lookup({k})"
                            );
                        } else {
                            // Range scan from a random start, random length.
                            let start = splitmix(&mut rng) % (max_key + 1000);
                            let len = (r % 64 + 1) as usize;
                            let n = shared.scan(start, len, &mut out).expect("scan");
                            let expected: Vec<Entry> =
                                oracle.range(start..).take(len).map(|(&k, &v)| (k, v)).collect();
                            assert_eq!(n, expected.len(), "{choice:?} thread {t} scan({start})");
                            assert_eq!(out, expected, "{choice:?} thread {t} scan({start})");
                        }
                    }
                });
            }
        });

        // Consistency of the shared statistics after the race:
        let stats = disk.stats();
        assert_eq!(stats.writes(), 0, "{choice:?}: a frozen index must never write");
        assert_eq!(stats.allocated_blocks(), 0, "{choice:?}: reads must not allocate");
        assert_eq!(
            stats.device_ns(),
            stats.reads(),
            "{choice:?}: flat 1ns model — torn device-time counters detected"
        );
        assert!(
            stats.reads() + stats.buffer_hits() + stats.reuse_hits()
                >= (THREADS * OPS_PER_THREAD) as u64,
            "{choice:?}: every operation must fetch at least one block"
        );
    }
}

#[test]
fn concurrent_readers_return_the_same_blocks_read_as_serial_execution() {
    // Determinism of the I/O accounting: the *set* of work is identical, so
    // the device-read counter after N threads must stay within the envelope
    // of a serial run (reuse hits can only turn device reads into hits,
    // never invent them).
    let (entries, _) = dataset();
    for choice in [IndexChoice::BTree, IndexChoice::HybridPla, IndexChoice::Pgm] {
        let probe: Vec<Key> = entries.iter().step_by(97).map(|e| e.0).collect();

        let run = |threads: usize| -> (u64, u64) {
            let disk = RunConfig::default().make_disk();
            let mut index = choice.build(std::sync::Arc::clone(&disk));
            index.bulk_load(&entries).expect("bulk load");
            disk.stats().reset();
            disk.reset_access_state();
            let shared: &dyn DiskIndex = &*index;
            let probe = &probe;
            std::thread::scope(|s| {
                for t in 0..threads {
                    s.spawn(move || {
                        let mut i = t;
                        while i < probe.len() {
                            shared.lookup(probe[i]).expect("lookup");
                            i += threads;
                        }
                    });
                }
            });
            (disk.stats().reads(), disk.stats().reuse_hits())
        };

        let (serial_reads, serial_reuse) = run(1);
        let (par_reads, par_reuse) = run(8);
        let serial_total = serial_reads + serial_reuse;
        let par_total = par_reads + par_reuse;
        assert_eq!(
            serial_total, par_total,
            "{choice:?}: total served block requests must not depend on thread count"
        );
    }
}
