//! Integration tests spanning every index crate: all implementations must
//! return exactly the same answers as an in-memory oracle for the same
//! operation sequence, across bulk loads, lookups, inserts (including
//! overwrites) and range scans.

use std::collections::BTreeMap;

use lidx_core::{DiskIndex, Entry, IndexWrite, Key, Value};
use lidx_experiments::runner::{IndexChoice, RunConfig};
use proptest::prelude::*;

fn build_loaded(choice: IndexChoice, entries: &[Entry]) -> Box<dyn DiskIndex> {
    let disk = RunConfig::default().make_disk();
    let mut index = choice.build(disk);
    index.bulk_load(entries).expect("bulk load");
    index
}

#[test]
fn all_indexes_agree_with_an_oracle_on_lookups_and_scans() {
    let entries: Vec<Entry> = (0..30_000u64)
        .map(|i| i * 11 + (i % 17) * 3)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|k| (k, k + 1))
        .collect();
    let oracle: BTreeMap<Key, Value> = entries.iter().copied().collect();

    for choice in IndexChoice::ALL_DESIGNS {
        let index = build_loaded(choice, &entries);
        assert_eq!(index.len(), entries.len() as u64, "{choice:?} key count");

        // Present, absent and boundary lookups.
        for &(k, v) in entries.iter().step_by(997) {
            assert_eq!(index.lookup(k).unwrap(), Some(v), "{choice:?} present key {k}");
        }
        for probe in [3u64, 12, entries.last().unwrap().0 + 5, u64::MAX] {
            assert_eq!(
                index.lookup(probe).unwrap(),
                oracle.get(&probe).copied(),
                "{choice:?} probe {probe}"
            );
        }

        // Scans of the paper's length (100) from existing start keys.
        let mut out = Vec::new();
        for &(start, _) in entries.iter().step_by(4_001) {
            let n = index.scan(start, 100, &mut out).unwrap();
            let expected: Vec<Entry> =
                oracle.range(start..).take(100).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(n, expected.len(), "{choice:?} scan length from {start}");
            assert_eq!(out, expected, "{choice:?} scan contents from {start}");
        }
    }
}

#[test]
fn all_indexes_agree_after_interleaved_inserts() {
    let bulk: Vec<Entry> = (0..5_000u64).map(|i| (i * 20, i)).collect();
    let inserts: Vec<Entry> =
        (0..5_000u64).map(|i| (i * 20 + 7 + (i % 5), 1_000_000 + i)).collect();
    let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
    for &(k, v) in &inserts {
        oracle.insert(k, v);
    }

    for choice in IndexChoice::ALL_DESIGNS {
        let mut index = build_loaded(choice, &bulk);
        for &(k, v) in &inserts {
            index.insert(k, v).unwrap();
        }
        // PGM reconciles duplicate keys lazily, so compare through lookups
        // rather than len() for exactness.
        for (&k, &v) in oracle.iter().step_by(313) {
            assert_eq!(index.lookup(k).unwrap(), Some(v), "{choice:?} key {k}");
        }
        // A full scan returns the oracle's contents in order.
        let mut out = Vec::new();
        let n = index.scan(0, oracle.len() + 10, &mut out).unwrap();
        assert_eq!(n, oracle.len(), "{choice:?} full scan size");
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "{choice:?} scan is sorted");
        let expected: Vec<Entry> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(out, expected, "{choice:?} full scan contents");
    }
}

#[test]
fn overwriting_a_key_is_visible_everywhere() {
    let bulk: Vec<Entry> = (1..=2_000u64).map(|i| (i * 3, i)).collect();
    for choice in IndexChoice::ALL_DESIGNS {
        let mut index = build_loaded(choice, &bulk);
        index.insert(300, 999_999).unwrap();
        assert_eq!(index.lookup(300).unwrap(), Some(999_999), "{choice:?} lookup after overwrite");
        let mut out = Vec::new();
        index.scan(299, 3, &mut out).unwrap();
        assert!(
            out.contains(&(300, 999_999)),
            "{choice:?} scan must observe the overwritten value, got {out:?}"
        );
        assert_eq!(out.iter().filter(|e| e.0 == 300).count(), 1, "{choice:?} no duplicates");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Property: for random bulk loads and random insert batches, every index
    /// agrees with the oracle on lookups of present and absent keys and on a
    /// random range scan.
    #[test]
    fn random_operations_match_the_oracle(
        bulk_keys in proptest::collection::btree_set(0u64..1_000_000, 50..400),
        insert_keys in proptest::collection::btree_set(0u64..1_000_000, 1..200),
        probes in proptest::collection::vec(0u64..1_100_000, 20),
        scan_start in 0u64..1_000_000,
        scan_len in 1usize..150,
    ) {
        let bulk: Vec<Entry> = bulk_keys.iter().map(|&k| (k, k + 1)).collect();
        let mut oracle: BTreeMap<Key, Value> = bulk.iter().copied().collect();
        let inserts: Vec<Entry> = insert_keys.iter().map(|&k| (k, k + 2)).collect();
        for &(k, v) in &inserts {
            oracle.insert(k, v);
        }

        // Exercise one tree-structured and one LSM/PLA-structured index per
        // case to keep the property test fast; the exhaustive pairing is
        // covered by the deterministic tests above.
        for choice in [IndexChoice::Alex, IndexChoice::Lipp, IndexChoice::Fiting] {
            let mut index = build_loaded(choice, &bulk);
            for &(k, v) in &inserts {
                index.insert(k, v).unwrap();
            }
            for &p in &probes {
                prop_assert_eq!(index.lookup(p).unwrap(), oracle.get(&p).copied(),
                    "{:?} probe {}", choice, p);
            }
            let mut out = Vec::new();
            index.scan(scan_start, scan_len, &mut out).unwrap();
            let expected: Vec<Entry> =
                oracle.range(scan_start..).take(scan_len).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(&out, &expected, "{:?} scan from {}", choice, scan_start);
        }
    }
}
