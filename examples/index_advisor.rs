//! A small "index advisor": given a dataset profile and a workload mix, it
//! measures every candidate index on a scaled-down sample and recommends one,
//! following the decision guidance of the paper (§7).
//!
//! ```sh
//! cargo run --release -p lidx-experiments --example index_advisor -- osm write-heavy
//! ```

use lidx_experiments::runner::{run_workload, IndexChoice, RunConfig};
use lidx_workloads::{profile_dataset, Dataset, Workload, WorkloadKind, WorkloadSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let dataset = args.next().and_then(|s| Dataset::from_name(&s)).unwrap_or(Dataset::Osm);
    let workload_kind = match args.next().as_deref() {
        Some("lookup-only") => WorkloadKind::LookupOnly,
        Some("scan-only") => WorkloadKind::ScanOnly,
        Some("write-only") => WorkloadKind::WriteOnly,
        Some("read-heavy") => WorkloadKind::ReadHeavy,
        Some("balanced") => WorkloadKind::Balanced,
        _ => WorkloadKind::WriteHeavy,
    };

    // Profile the data the way Table 3 does: linear-model hardness and
    // conflict degree tell us in advance which learned indexes will struggle.
    let keys = dataset.generate_keys(100_000, 11);
    let profile = profile_dataset(&keys, &[64], 4096);
    println!(
        "dataset {}: {} keys, {} segments at eps=64, conflict degree {}",
        dataset.name(),
        profile.keys,
        profile.segments[0].1,
        profile.conflict_degree
    );
    println!("workload: {}\n", workload_kind.name());

    // Measure every candidate on a sample of the data.
    let workload = if workload_kind.bulk_loads_everything() {
        Workload::build(&keys, WorkloadSpec::new(workload_kind, 3_000, 0))
    } else {
        Workload::build(&keys, WorkloadSpec::new(workload_kind, 3_000, 30_000))
    };
    let config = RunConfig::default();
    let mut results: Vec<(IndexChoice, f64, f64)> = IndexChoice::EVALUATED
        .iter()
        .map(|&c| {
            let r = run_workload(c, &config, &workload);
            (c, r.throughput(), r.storage_mib())
        })
        .collect();
    results.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("{:<8} {:>14} {:>12}", "index", "ops/s (HDD)", "size (MiB)");
    for (choice, tput, size) in &results {
        println!("{:<8} {:>14.1} {:>12.1}", choice.name(), tput, size);
    }

    let (winner, _, _) = results[0];
    println!("\nrecommendation: {}", winner.name());
    match winner {
        IndexChoice::Pgm => println!(
            "  PGM's LSM-style insert path keeps writes cheap (paper O6); watch out for \
             read-heavy phases where its multiple components hurt (O10)."
        ),
        IndexChoice::Lipp => println!(
            "  LIPP's precise predictions minimise fetched blocks for point lookups (paper O2); \
             avoid it for scans and write-heavy workloads (O5, O7)."
        ),
        IndexChoice::BTree => println!(
            "  The B+-tree remains the safe default on disk across mixed workloads (paper K1/O9)."
        ),
        other => println!("  {} won on this sample; validate at full scale.", other.name()),
    }
}
