//! Demonstrates the paper's design guidance (§6.1.2, §7.2 P3/P5): combining a
//! learned inner structure with B+-tree-styled leaves, and caching inner
//! nodes in memory, both narrow the gap to (or beat) the plain B+-tree.
//!
//! ```sh
//! cargo run --release -p lidx-experiments --example hybrid_design
//! ```

use lidx_experiments::runner::{run_workload, IndexChoice, RunConfig};
use lidx_workloads::{Dataset, Workload, WorkloadKind, WorkloadSpec};

fn report(label: &str, choice: IndexChoice, cfg: &RunConfig, w: &Workload) {
    let r = run_workload(choice, cfg, w);
    println!(
        "{label:<34} {:>6.2} blocks/lookup   {:>9.1} ops/s",
        r.avg_reads_per_op,
        r.throughput()
    );
}

fn main() {
    let keys = Dataset::Fb.generate_keys(200_000, 3);
    let lookups = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 4_000, 0));
    let scans = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::ScanOnly, 2_000, 0));
    let disk_resident = RunConfig::default();
    let cached_inner = RunConfig { memory_resident_inner: true, ..Default::default() };

    println!("== Lookup-Only on an FB-like dataset ({} keys, HDD) ==", keys.len());
    report("B+-tree (fully on disk)", IndexChoice::BTree, &disk_resident, &lookups);
    report("LIPP (fully on disk)", IndexChoice::Lipp, &disk_resident, &lookups);
    report("hybrid: PLA inner + B+-tree leaves", IndexChoice::HybridPla, &disk_resident, &lookups);
    report(
        "hybrid: model-tree inner + leaves",
        IndexChoice::HybridModelTree,
        &disk_resident,
        &lookups,
    );
    report("B+-tree, inner nodes in memory", IndexChoice::BTree, &cached_inner, &lookups);
    report("ALEX, inner nodes in memory", IndexChoice::Alex, &cached_inner, &lookups);

    println!("\n== Scan-Only (100-entry ranges) ==");
    report("B+-tree (fully on disk)", IndexChoice::BTree, &disk_resident, &scans);
    report("ALEX (fully on disk)", IndexChoice::Alex, &disk_resident, &scans);
    report("LIPP (fully on disk)", IndexChoice::Lipp, &disk_resident, &scans);
    report("hybrid: PLA inner + B+-tree leaves", IndexChoice::HybridPla, &disk_resident, &scans);
    report(
        "hybrid: model-tree inner + leaves",
        IndexChoice::HybridModelTree,
        &disk_resident,
        &scans,
    );

    println!(
        "\nTake-away (paper §6.1.2/§6.2): dense linked leaves repair the scan behaviour of the\n\
         learned designs, and once inner nodes are memory-resident the B+-tree's last-mile leaf\n\
         access is as small as anyone's — which is why it wins every workload in that setting."
    );
}
