//! An OLTP-style mixed workload executed by *real* reader/writer threads:
//! every studied index is wrapped in the concurrent write front
//! (`ConcurrentIndex` + `ShardedWriteBuffer`) and raced under the YCSB-A/B/C
//! mixes while a background writer continuously stages and drains — a
//! miniature version of the `mixed_workload` experiment target.
//!
//! ```sh
//! cargo run --release -p lidx-experiments --example oltp_mixed_workload
//! ```

use lidx_core::ShardedWriteBufferConfig;
use lidx_experiments::report::{tail_table, us, Table};
use lidx_experiments::runner::{run_mixed_workload, IndexChoice, RunConfig, YcsbMix};
use lidx_storage::{DeviceModel, OpClass};
use lidx_workloads::{Dataset, Workload, WorkloadKind, WorkloadSpec};

fn main() {
    // An FB-like dataset: heavy-tailed gaps, the hardest case for the
    // piecewise-linear learned indexes.
    let keys = Dataset::Fb.generate_keys(100_000, 7);
    println!("dataset: fb-like, {} keys", keys.len());

    // Bulk load 30k keys; the remaining keys fuel the insert pool the worker
    // and background-writer threads stage through the sharded buffer.
    let workload =
        Workload::build(&keys, WorkloadSpec::new(WorkloadKind::Balanced, 10_000, 30_000));
    println!(
        "bulk load: {} keys; insert pool: {} keys",
        workload.bulk.len(),
        workload.insert_count()
    );

    // The device cost model is realised as blocking time so reader threads
    // genuinely overlap their simulated I/O waits (25 us random read).
    let config = RunConfig {
        device: DeviceModel::custom("ssd-25us", 25_000, 30_000, 15_000),
        simulate_device_latency: true,
        ..Default::default()
    };
    let buffer = ShardedWriteBufferConfig { capacity: 1024, drain: 64, shards: 8 };
    let ops_per_thread = 2_000;

    for mix in YcsbMix::ALL {
        println!(
            "\n== {} ({:.0} % reads, workers racing a draining background writer) ==",
            mix.name(),
            mix.read_fraction() * 100.0
        );
        println!(
            "{:<24} {:>10} {:>12} {:>8} {:>8} {:>12} {:>12}",
            "index", "threads", "ops/s", "speedup", "drains", "read stalls", "write stalls"
        );
        let mut tails = Table::new([
            "index",
            "lookup p99 us",
            "lookup p999 us",
            "insert p99 us",
            "drain p99 us",
            "top pause",
        ]);
        let mut detail = None;
        for choice in IndexChoice::EVALUATED {
            let mut base = 0.0f64;
            for threads in [1usize, 4] {
                let r = run_mixed_workload(
                    choice,
                    &config,
                    &workload,
                    mix,
                    threads,
                    ops_per_thread,
                    buffer,
                );
                assert_eq!(r.lost, 0, "staged keys must survive the race");
                assert_eq!(r.not_found, 0, "bulk keys must stay visible");
                if threads == 1 {
                    base = r.aggregate_ops_per_sec();
                }
                println!(
                    "{:<24} {:>10} {:>12.0} {:>7.2}x {:>8} {:>12} {:>12}",
                    r.index,
                    threads,
                    r.aggregate_ops_per_sec(),
                    r.aggregate_ops_per_sec() / base.max(f64::MIN_POSITIVE),
                    r.drain_chunks,
                    r.read_stalls,
                    r.write_stalls,
                );
                if threads == 4 {
                    tails.row([
                        r.index.clone(),
                        us(r.telemetry.class(OpClass::Lookup).summary.p99_ns as f64),
                        us(r.telemetry.class(OpClass::Lookup).summary.p999_ns as f64),
                        us(r.telemetry.class(OpClass::Insert).summary.p99_ns as f64),
                        us(r.telemetry.class(OpClass::Drain).summary.p99_ns as f64),
                        r.telemetry
                            .top_pauses(1)
                            .first()
                            .map(|c| c.class.label().to_string())
                            .unwrap_or_else(|| "-".to_string()),
                    ]);
                    detail = Some(r);
                }
            }
        }
        println!("\n-- per-op-class tails at 4 threads ({}) --", mix.name());
        tails.print();
        if let Some(r) = detail {
            println!("\n-- full pause attribution: {} ({}) --", r.index, mix.name());
            tail_table(&r.telemetry).print();
        }
    }
    println!(
        "\nExpected shape: reads scale close to the thread count (drains pause them only\n\
         chunk-wise), read stalls surface exactly that contention, the tail tables pin the\n\
         drain/SMO pauses behind the p999, and no run loses a key."
    );
}
