//! An OLTP-style mixed workload (the paper's Balanced workload) executed
//! against every studied index, printing throughput, fetched blocks and tail
//! latency — a miniature version of Fig. 5 / Fig. 12.
//!
//! ```sh
//! cargo run --release -p lidx-experiments --example oltp_mixed_workload
//! ```

use lidx_experiments::runner::{run_workload, IndexChoice, RunConfig};
use lidx_storage::DeviceModel;
use lidx_workloads::{Dataset, Workload, WorkloadKind, WorkloadSpec};

fn main() {
    // An FB-like dataset: heavy-tailed gaps, the hardest case for the
    // piecewise-linear learned indexes.
    let keys = Dataset::Fb.generate_keys(100_000, 7);
    println!("dataset: fb-like, {} keys", keys.len());

    // Balanced workload: bulk load 30k keys, then 10k operations split 50/50
    // between lookups of existing keys and inserts of new ones.
    let workload =
        Workload::build(&keys, WorkloadSpec::new(WorkloadKind::Balanced, 10_000, 30_000));
    println!(
        "workload: {} ({} lookups, {} inserts) over a {}-key bulk load\n",
        workload.kind.name(),
        workload.lookup_count(),
        workload.insert_count(),
        workload.bulk.len()
    );

    let config = RunConfig { device: DeviceModel::ssd(), ..Default::default() };
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "index", "ops/s (SSD)", "blocks/op", "writes/op", "p99 (ms)", "size (MiB)"
    );
    for choice in IndexChoice::EVALUATED {
        let report = run_workload(choice, &config, &workload);
        println!(
            "{:<8} {:>12.0} {:>12.2} {:>12.2} {:>12.2} {:>12.1}",
            choice.name(),
            report.throughput(),
            report.avg_reads_per_op,
            report.avg_writes_per_op,
            report.latency.p99_ns as f64 / 1e6,
            report.storage_mib(),
        );
    }
    println!(
        "\nExpected shape (paper O9): the B+-tree ranks first or second; PGM's cheap inserts\n\
         are offset by its multi-component reads; ALEX and LIPP pay for SMOs and statistics."
    );
}
