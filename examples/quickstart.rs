//! Quickstart: build a disk-resident index, run lookups, inserts and scans,
//! and inspect the I/O statistics the evaluation is based on.
//!
//! ```sh
//! cargo run --release -p lidx-experiments --example quickstart
//! ```

use std::sync::Arc;

use lidx_btree::BTreeIndex;
use lidx_core::{payload_for, IndexRead, IndexWrite};
use lidx_lipp::LippIndex;
use lidx_storage::{DeviceModel, Disk, DiskConfig};

fn main() {
    // 1. Create a simulated disk: 4 KB blocks, HDD cost model, no buffer pool
    //    (the paper's default configuration).
    let disk = Disk::in_memory(DiskConfig::with_block_size(4096).device(DeviceModel::hdd()));

    // 2. Build a B+-tree over one million keys.
    let entries: Vec<_> = (0..1_000_000u64).map(|i| (i * 7, payload_for(i * 7))).collect();
    let mut btree = BTreeIndex::new(Arc::clone(&disk)).expect("create index");
    btree.bulk_load(&entries).expect("bulk load");
    println!(
        "B+-tree bulk loaded: {} keys, height {}, {} leaf nodes, {:.1} MiB on disk",
        btree.len(),
        btree.stats().height,
        btree.stats().leaf_nodes,
        btree.storage_blocks() as f64 * 4096.0 / (1024.0 * 1024.0),
    );

    // 3. Point lookups: every operation's cost is visible in the disk stats.
    disk.stats().reset();
    for i in (0..1_000_000u64).step_by(100_003) {
        let key = i * 7;
        let found = btree.lookup(key).expect("lookup");
        assert_eq!(found, Some(payload_for(key)));
    }
    println!(
        "10 lookups fetched {} blocks total ({:.1} per lookup), {:.2} ms of simulated HDD time",
        disk.stats().reads(),
        disk.stats().reads() as f64 / 10.0,
        disk.stats().device_ns() as f64 / 1e6
    );

    // 4. Inserts and a range scan.
    for i in 0..1_000u64 {
        btree.insert(i * 7 + 3, i).expect("insert");
    }
    let mut out = Vec::new();
    btree.scan(350, 20, &mut out).expect("scan");
    println!("scan(350, 20) returned {} entries starting at key {}", out.len(), out[0].0);

    // 5. The same API works for every index in the workspace; here is LIPP on
    //    its own disk for comparison.
    let lipp_disk = Disk::in_memory(DiskConfig::with_block_size(4096).device(DeviceModel::hdd()));
    let mut lipp = LippIndex::new(Arc::clone(&lipp_disk)).expect("create lipp");
    lipp.bulk_load(&entries).expect("bulk load");
    lipp_disk.stats().reset();
    lipp.lookup(entries[500_000].0).expect("lookup");
    println!(
        "LIPP lookup fetched {} blocks (tree height {}); the B+-tree needed {}",
        lipp_disk.stats().reads(),
        lipp.stats().height,
        btree.stats().height
    );
}
