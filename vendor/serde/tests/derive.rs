//! Exercises the vendored derive exactly as the workspace does.

use serde::Serialize;

#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
struct Summary {
    count: u64,
    mean: f64,
}

#[derive(Serialize)]
enum Kind {
    #[allow(dead_code)]
    A,
}

fn assert_serialize<T: Serialize>() {}

#[test]
fn derive_produces_marker_impls() {
    assert_serialize::<Summary>();
    assert_serialize::<Kind>();
    assert_serialize::<Vec<Summary>>();
    assert_serialize::<Option<u64>>();
    let _ = Summary { count: 1, mean: 2.0 };
}
