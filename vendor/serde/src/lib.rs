//! A minimal stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only derives `Serialize` as a marker on metric/report
//! structs (actual output formatting is hand-written), so the traits here
//! carry no methods. The derive macros are re-exported from the vendored
//! `serde_derive` proc-macro crate.

#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}
impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
