//! A minimal stand-in for the subset of the `criterion` benchmark harness
//! this workspace uses.
//!
//! It really measures: each benchmark runs its routine in timed batches
//! until the configured measurement time elapses (after a warm-up), then
//! prints the mean per-iteration wall-clock time. There are no statistics
//! beyond the mean, no plots and no saved baselines — just enough to make
//! `cargo bench` produce comparable numbers offline.
//!
//! Supported: `Criterion::benchmark_group`, group `sample_size` /
//! `warm_up_time` / `measurement_time` / `bench_function` / `finish`,
//! `Bencher::iter` / `iter_batched`, [`BenchmarkId`], [`BatchSize`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `Bencher::iter_batched` amortises setup cost. The stub runs one
/// setup per routine invocation regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: many iterations per batch.
    SmallInput,
    /// Large per-iteration state: few iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing configuration shared by a group's benchmarks.
#[derive(Debug, Clone, Copy)]
struct Timing {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Timing {
    fn default() -> Self {
        Timing { warm_up: Duration::from_millis(300), measurement: Duration::from_millis(900) }
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration. The stub accepts and ignores all
    /// arguments (notably the `--bench` / `--test` flags cargo passes).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _criterion: self, name, timing: Timing::default() }
    }

    /// Prints the final summary. The stub reports per-benchmark lines as it
    /// goes, so this is a no-op kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    timing: Timing,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count. Accepted for API compatibility; the
    /// stub sizes batches by time, not by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.timing.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.timing.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { timing: self.timing, result: None };
        f(&mut bencher);
        match bencher.result {
            Some(r) => eprintln!(
                "  {}/{}: {} per iter ({} iters)",
                self.name,
                id.id,
                format_ns(r.mean_ns),
                r.iters
            ),
            None => eprintln!("  {}/{}: no measurement recorded", self.name, id.id),
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    iters: u64,
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    timing: Timing,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine` repeatedly until the measurement time elapses.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_deadline = Instant::now() + self.timing.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < self.timing.measurement {
            let t0 = Instant::now();
            black_box(routine());
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.record(elapsed, iters);
    }

    /// Measures `routine` over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.timing.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < self.timing.measurement {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.record(elapsed, iters);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        let mean_ns = if iters == 0 { 0.0 } else { elapsed.as_nanos() as f64 / iters as f64 };
        self.result = Some(Measurement { mean_ns, iters });
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0, "the routine must actually run");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| {
                    runs += 1;
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert!(setups > 0 && setups == runs);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", "p").id, "f/p");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
