//! Minimal derive macros backing the vendored `serde` stand-in.
//!
//! The derives emit marker-trait impls only: the workspace derives
//! `Serialize` on report structs but serialisation itself goes through
//! hand-written formatting, so no field-level code generation is needed.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier of the type a derive is applied to: the first
/// identifier following the `struct` / `enum` / `union` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(ident) = tt {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if matches!(text.as_str(), "struct" | "enum" | "union") {
                saw_keyword = true;
            }
        }
    }
    None
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive input must name a struct or enum");
    format!("impl {trait_path} for {name} {{}}").parse().unwrap()
}

/// Derives the vendored `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// Derives the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
