//! A minimal, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides API-compatible replacements for:
//!
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`, `gen_ratio`
//! * [`SeedableRng`] — `seed_from_u64`, `from_seed`
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator
//! * [`seq::SliceRandom`] — `shuffle`, `choose`
//!
//! The streams are deterministic for a given seed (which is all the
//! workspace relies on) but intentionally make no attempt to match the
//! output of the real `rand` crate.

#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: everything builds on `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Sampling of a uniform value of type `Self` from an `Rng`.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open and closed ranges. The
/// single blanket impl of [`SampleRange`] over this trait is what lets type
/// inference flow from the call site into untyped range literals, exactly
/// as in the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[start, end)`. Panics if empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Draws uniformly from `[start, end]`. Panics if empty.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Uniform u64 in `[0, span)` via widening multiply; close enough to
/// unbiased for every workload in this repository while staying
/// branch-light.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                start + uniform_u64_below(rng, span) as $t
            }

            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }

            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + (end - start) * u
            }

            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + (end - start) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        uniform_u64_below(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut next = || {
                seed = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut acc = 0u64;
            for chunk in seed.chunks(8) {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                acc = acc.rotate_left(8) ^ u64::from_le_bytes(b);
            }
            StdRng::from_state(acc)
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-export namespace mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 10)).count();
        assert!((8_000..12_000).contains(&hits), "1/10 ratio produced {hits}/100000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be the identity");
    }

    #[test]
    fn uniform_f64_covers_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi);
    }
}
