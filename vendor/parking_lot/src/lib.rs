//! A minimal stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Wraps the standard-library primitives but exposes `parking_lot`'s
//! poison-free API (`lock()` returns the guard directly). A poisoned inner
//! lock — only possible if a thread panicked while holding it — is recovered
//! rather than propagated, matching `parking_lot` semantics.

#![warn(rust_2018_idioms)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(5);
        {
            let _r = l.read();
            assert!(l.try_read().is_some(), "read locks are shared");
            assert!(l.try_write().is_none(), "a reader blocks writers");
        }
        {
            let mut w = l.try_write().expect("uncontended try_write succeeds");
            *w += 1;
            assert!(l.try_read().is_none(), "a writer blocks readers");
        }
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the inner lock");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock() must recover from poisoning");
    }
}
