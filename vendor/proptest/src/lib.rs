//! A minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! Supported surface:
//!
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for integer
//!   ranges, tuples of strategies, and [`any`].
//! * [`collection::vec`] and [`collection::btree_set`] with a size given as
//!   a `usize` or a `Range<usize>`.
//! * The [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_oneof!`].
//!
//! Unlike the real proptest there is **no shrinking**: a failing case
//! reports its case number and the fixed base seed, which is enough to
//! reproduce it deterministically (generation is seeded per test from a
//! constant, so reruns fail identically).

#![warn(rust_2018_idioms)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Error raised by `prop_assert*` macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a single property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Maximum consecutive generation rejections before giving up. Unused
    /// by the stub (it has no `prop_filter`), kept for API compatibility.
    pub max_global_rejects: u32,
    /// Shrink-iteration bound. The stub does not shrink; kept for API
    /// compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 1024, max_shrink_iters: 0 }
    }
}

/// A value generator. The stub generates uniformly at random and does not
/// shrink.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// A strategy that always produces a clone of one specific value (API
/// subset of proptest's `Just`); the building block for enum strategies via
/// [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between type-erased strategies; built by
/// [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`. Panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Number-of-elements specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `BTreeSet` of values from `element` with a target size in
    /// `size` (best-effort: duplicates are retried a bounded number of
    /// times, so very narrow element domains may yield smaller sets).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(10) + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Runs the cases of one property; used by the generated test functions.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    // Deterministic seed derived from the test name so every property gets
    // a distinct but reproducible stream.
    let mut seed = 0xC0FFEE_u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed at case {i}/{}: {e}", config.cases);
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right` at {}:{}\n  left: `{:?}`\n right: `{:?}`",
                file!(), line!(), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right` at {}:{}: {}\n  left: `{:?}`\n right: `{:?}`",
                file!(), line!(), format!($($fmt)+), left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right` at {}:{} (both `{:?}`)",
                file!(),
                line!(),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
